package sim

import (
	"fmt"
	"math"
	"math/rand"
	"sort"
	"sync"
	"time"

	"clash/internal/bitkey"
	"clash/internal/chord"
	"clash/internal/cq"
	"clash/internal/load"
	"clash/internal/metrics"
	"clash/internal/overlay"
	"clash/internal/sim/link"
	"clash/internal/workload"
)

// Phase is one traffic segment of a scenario, lasting Ticks load-check
// periods.
type Phase struct {
	// Name labels the phase in the per-tick samples.
	Name string `json:"name"`
	// Ticks is the phase length in load-check periods.
	Ticks int `json:"ticks"`
	// Packets is how many data packets are published per tick.
	Packets int `json:"packets"`
	// HotShare, when positive, routes that fraction of the phase's packets
	// to keys under the fixed HotBase base value instead of drawing them
	// from the workload distribution (the flash-crowd shape).
	HotShare float64 `json:"hot_share,omitempty"`
	// HotBase is the base value hot packets concentrate on.
	HotBase int `json:"hot_base,omitempty"`
}

// ChurnEvent crashes or rejoins nodes at the start of a tick. Crashed nodes
// keep their server state (a process restart with its table intact) and
// re-enter the ring through the bootstrap node when rejoined.
type ChurnEvent struct {
	Tick   int `json:"tick"`
	Crash  int `json:"crash,omitempty"`
	Rejoin int `json:"rejoin,omitempty"`
	// CrashHolderFrac crashes that fraction (rounded up) of the live
	// non-bootstrap nodes currently holding at least one active key group —
	// the durability scenario's way of guaranteeing the crashes actually
	// destroy key-group state rather than hitting idle members.
	CrashHolderFrac float64 `json:"crash_holder_frac,omitempty"`
}

// PartitionSpec splits the fabric in two for a window of ticks: the last
// Fraction of the nodes (by index) lose contact with the rest, then the
// partition heals and the isolated side re-joins through the bootstrap node.
type PartitionSpec struct {
	FromTick int     `json:"from_tick"`
	ToTick   int     `json:"to_tick"`
	Fraction float64 `json:"fraction"`
}

// SlowSpec makes the last Fraction of the nodes (by index, never the
// bootstrap node) gray-slow for the whole run: every message to or from them
// takes Factor times the sampled link latency. Unlike a crash, the nodes
// answer correctly — eventually.
type SlowSpec struct {
	Fraction float64 `json:"fraction"`
	Factor   float64 `json:"factor"`
}

// AsymSpec blackholes one direction for a window of ticks: requests from the
// majority to the last Fraction of the nodes vanish in transit, while the
// minority's requests still reach the majority (only their replies are lost)
// — the classic asymmetric gray partition. On ToTick the direction heals and
// the minority re-joins through the bootstrap node.
type AsymSpec struct {
	FromTick int     `json:"from_tick"`
	ToTick   int     `json:"to_tick"`
	Fraction float64 `json:"fraction"`
}

// Expect declares the invariants a scenario run must satisfy; violations are
// reported in the result (and fail cmd/clashsim).
type Expect struct {
	// MinSplits / MinMerges are lower bounds on load-driven splits and
	// consolidation merges.
	MinSplits int `json:"min_splits,omitempty"`
	MinMerges int `json:"min_merges,omitempty"`
	// AllMatchesDelivered requires every inline continuous-query match to
	// have been push-delivered to its subscriber with zero drops (only
	// meaningful on lossless links).
	AllMatchesDelivered bool `json:"all_matches_delivered,omitempty"`
	// CoverageComplete requires the live nodes' active groups to exactly
	// partition the key space at the end of the run.
	CoverageComplete bool `json:"coverage_complete,omitempty"`
	// RingConverged requires every live node's successor pointer to equal
	// its true ring successor at the end of the run (zero drift).
	RingConverged bool `json:"ring_converged,omitempty"`
	// MaxRingDrift, when positive, allows up to that many live nodes to
	// have a stale successor pointer at the end — the honest steady state
	// of a ring under continuous message loss, where spurious drops and
	// re-adoptions keep a node or two permanently mid-repair.
	MaxRingDrift int `json:"max_ring_drift,omitempty"`
	// ZeroLostCQ requires every continuous query registered at boot to
	// survive the run: each must still be stored on some live node AND a
	// matching probe packet published at the end must report it matched.
	// This is the durability invariant — it fails if crashing a key-group
	// holder lost its query state.
	ZeroLostCQ bool `json:"zero_lost_cq,omitempty"`
	// MinHolderCrashFrac requires the churn schedule to actually have
	// crashed at least this fraction of the group-holding nodes (measured
	// cumulatively against the holder count at the first crash event), so a
	// passing durability run cannot be explained by the crashes missing the
	// state they were meant to destroy.
	MinHolderCrashFrac float64 `json:"min_holder_crash_frac,omitempty"`
	// MaxHealthyTickMs, when positive, bounds the p99 virtual cost (in
	// milliseconds) of a healthy node's maintenance tick — the gray-failure
	// invariant that one slow peer must not wedge everyone else's
	// maintenance for a full legacy call timeout.
	MaxHealthyTickMs float64 `json:"max_healthy_tick_ms,omitempty"`
	// SpansComplete requires every sampled publish's hop spans to form one
	// connected tree rooted at a single ingress span, and at least one trace
	// to have been sampled (set Scenario.TraceEvery). Only meaningful on
	// lossless links — a dropped-and-retried probe legitimately records two
	// ingress spans.
	SpansComplete bool `json:"spans_complete,omitempty"`
	// EventsConsistent cross-checks the nodes' observer event stream against
	// the protocol counters: split events bound the split counter from below
	// (one split event covers one or more table subdivisions) and agree with
	// it on zero-ness, merge events equal the merge counter, and recovery
	// events agree with the recovered-groups counter on zero-ness. Only
	// meaningful on churn-free runs — a crashed node's counters vanish while
	// its events remain counted.
	EventsConsistent bool `json:"events_consistent,omitempty"`
}

// Scenario fully describes one simulated experiment.
type Scenario struct {
	Name           string        `json:"name"`
	Nodes          int           `json:"nodes"`
	Seed           int64         `json:"seed"`
	KeyBits        int           `json:"key_bits"`
	BootstrapDepth int           `json:"bootstrap_depth"`
	Capacity       float64       `json:"capacity_pps"`
	Workload       workload.Kind `json:"-"`
	WorkloadName   string        `json:"workload"`
	CheckEvery     time.Duration `json:"-"`
	CheckEverySec  float64       `json:"check_every_s"`
	StabilizeEvery time.Duration `json:"-"`
	Queries        int           `json:"queries"`
	// Replicas overrides the overlay's key-group replication factor
	// (0 = the overlay default; negative disables replication).
	Replicas int `json:"replicas,omitempty"`
	// TraceEvery samples every Nth delivered object for request tracing
	// (0 disables): sampled publishes carry a trace ID on the wire and every
	// node on their path emits hop spans into the run's span collector.
	TraceEvery int            `json:"trace_every,omitempty"`
	Link       link.Model     `json:"link"`
	Phases     []Phase        `json:"phases"`
	Churn      []ChurnEvent   `json:"churn,omitempty"`
	Partition  *PartitionSpec `json:"partition,omitempty"`
	Slow       *SlowSpec      `json:"slow,omitempty"`
	Asym       *AsymSpec      `json:"asym,omitempty"`
	Expect     Expect         `json:"expect"`
}

// TotalTicks returns the scenario length in load-check periods.
func (sc Scenario) TotalTicks() int {
	t := 0
	for _, p := range sc.Phases {
		t += p.Ticks
	}
	return t
}

// phaseAt returns the phase covering tick k.
func (sc Scenario) phaseAt(k int) Phase {
	for _, p := range sc.Phases {
		if k < p.Ticks {
			return p
		}
		k -= p.Ticks
	}
	if len(sc.Phases) == 0 {
		return Phase{}
	}
	return sc.Phases[len(sc.Phases)-1]
}

// TickSample is one per-tick metrics record.
type TickSample struct {
	Tick        int     `json:"tick"`
	VirtualSec  float64 `json:"t_virtual_s"`
	Phase       string  `json:"phase"`
	LiveNodes   int     `json:"live_nodes"`
	Groups      int     `json:"active_groups"`
	Holders     int     `json:"servers_with_groups"`
	DepthMin    int     `json:"depth_min"`
	DepthMax    int     `json:"depth_max"`
	DepthMean   float64 `json:"depth_mean"`
	MaxLoad     float64 `json:"max_node_load"`
	TotalLoad   float64 `json:"total_load"`
	Splits      int     `json:"splits"`
	Merges      int     `json:"merges"`
	Accepted    int     `json:"groups_accepted"`
	Released    int     `json:"groups_released"`
	Packets     int     `json:"packets_ok"`
	PubErrors   int     `json:"publish_errors"`
	MatchInline int     `json:"matches_inline"`
	MatchDelivd int     `json:"matches_delivered"`
}

// Totals are the end-of-run cumulative counters.
type Totals struct {
	Splits           int   `json:"splits"`
	Merges           int   `json:"merges"`
	GroupsAccepted   int   `json:"groups_accepted"`
	GroupsReleased   int   `json:"groups_released"`
	PacketsOK        int   `json:"packets_ok"`
	PublishErrors    int   `json:"publish_errors"`
	MatchesInline    int   `json:"matches_inline"`
	MatchesDelivered int   `json:"matches_delivered"`
	MatchDrops       int64 `json:"match_drops"`
	Calls            int   `json:"transport_calls"`
	// Timeouts and Retries are summed over the live nodes' transport stats:
	// calls that expired at their deadline, and policy-level resends.
	Timeouts uint64 `json:"timeouts,omitempty"`
	Retries  uint64 `json:"retries,omitempty"`
}

// Result is the JSON-stable record of one scenario run. It contains no
// wall-clock timestamps, so two runs with the same scenario and seed marshal
// byte-identically.
type Result struct {
	Scenario       Scenario        `json:"scenario"`
	RunVirtualSec  float64         `json:"run_virtual_s"`
	Ticks          []TickSample    `json:"ticks"`
	FinalDepthHist []int           `json:"final_depth_hist"`
	Totals         Totals          `json:"totals"`
	MatchLatencyMs metrics.Summary `json:"match_latency_virtual_ms"`
	// TickCostMs summarises the virtual blocking cost of the healthy (not
	// gray-slowed) nodes' maintenance ticks; SlowTickCostMs covers the
	// gray-slowed nodes when a SlowSpec is set.
	TickCostMs       metrics.Summary  `json:"tick_cost_virtual_ms"`
	SlowTickCostMs   *metrics.Summary `json:"slow_tick_cost_virtual_ms,omitempty"`
	RingConverged    bool             `json:"ring_converged"`
	RingDrift        int              `json:"ring_drift"`
	CoverageComplete bool             `json:"coverage_complete"`
	CoverageOverlaps int              `json:"coverage_overlaps"`
	// Durability accounting: how many group-holding nodes the churn
	// schedule crashed (HoldersAtFirstCrash is the holder population when
	// the first crash hit), how many of the boot-registered continuous
	// queries are still stored on live nodes at the end, and how many
	// end-of-run matching probes failed to report their query.
	HoldersCrashed      int      `json:"holders_crashed"`
	HoldersAtFirstCrash int      `json:"holders_at_first_crash"`
	GroupsRecovered     int      `json:"groups_recovered"`
	CQRegistered        int      `json:"cq_registered"`
	CQSurviving         int      `json:"cq_surviving"`
	CQProbeMisses       int      `json:"cq_probe_misses"`
	LostCQs             []string `json:"lost_cqs,omitempty"`
	// Events counts the protocol events the nodes' observers reported over
	// the whole run (boot included), by event type.
	Events map[string]int `json:"events,omitempty"`
	// Spans summarises the hop spans of the run's sampled publishes (present
	// only when Scenario.TraceEvery is set and at least one span was emitted).
	Spans      *SpanReport `json:"spans,omitempty"`
	Violations []string    `json:"violations"`
}

// eventCounter is the simulator's overlay.Observer (the hub's role in a live
// deployment): it counts protocol events by type across every node, so the
// scenario assertions can cross-check the event stream against the protocol
// counters, and collects every hop span the traced publishes emit so the
// span-completeness invariant can be checked at the end of the run. Trace
// records and stage timings are ignored — the virtual clock makes every
// in-node stage zero.
type eventCounter struct {
	mu     sync.Mutex
	counts map[string]int
	spans  []overlay.Span
}

func newEventCounter() *eventCounter {
	return &eventCounter{counts: make(map[string]int)}
}

func (c *eventCounter) OnEvent(ev overlay.Event) {
	c.mu.Lock()
	c.counts[ev.Type]++
	c.mu.Unlock()
}

func (c *eventCounter) OnTrace(overlay.TraceRecord) {}

func (c *eventCounter) OnTraceStage(string, int64) {}

// OnSpan retains every hop span in emission order. The simulation is
// single-threaded (InlineMatchPush), so the order — and with it the whole
// span analysis — is deterministic for a given scenario and seed.
func (c *eventCounter) OnSpan(sp overlay.Span) {
	c.mu.Lock()
	c.spans = append(c.spans, sp)
	c.mu.Unlock()
}

func (c *eventCounter) snapshot() map[string]int {
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make(map[string]int, len(c.counts))
	for k, v := range c.counts {
		out[k] = v
	}
	return out
}

func (c *eventCounter) spanSnapshot() []overlay.Span {
	c.mu.Lock()
	defer c.mu.Unlock()
	return append([]overlay.Span(nil), c.spans...)
}

// simNode is one simulated overlay member.
type simNode struct {
	node *overlay.Node
	addr string
	down bool
}

// runner holds one scenario execution's state.
type runner struct {
	sc     Scenario
	eng    *Engine
	net    *Net
	nodes  []*simNode
	client *overlay.Client

	gen     *workload.KeyGenerator
	attrRng *rand.Rand

	packets   int
	pubErrors int
	inline    int
	delivered int

	queries             []cq.Query // the boot-registered continuous queries
	holdersCrashed      int
	holdersAtFirstCrash int

	// Gray-failure accounting: which nodes are slowed, and the virtual cost
	// of every measured maintenance tick (healthy vs slowed, microseconds).
	slowSet      map[string]bool
	tickCost     *metrics.LatencyHist
	slowTickCost *metrics.LatencyHist

	// events counts the protocol events every node's observer reports.
	events *eventCounter
}

// Run executes a scenario to completion and returns its result.
func Run(sc Scenario) (*Result, error) {
	if sc.Nodes < 1 {
		return nil, fmt.Errorf("sim: scenario needs at least one node")
	}
	if sc.TotalTicks() == 0 {
		return nil, fmt.Errorf("sim: scenario has no phases")
	}
	sc.WorkloadName = sc.Workload.String()
	sc.CheckEverySec = sc.CheckEvery.Seconds()

	eng := NewEngine(sc.Seed)
	// Boot on a lossless copy of the scenario link so the overlay always
	// converges (and the root distribution completes) before measurement;
	// the real model engages when the run starts.
	bootLink := sc.Link
	bootLink.Loss = 0
	net, err := NewNet(eng, bootLink)
	if err != nil {
		return nil, err
	}
	if err := sc.Link.Validate(); err != nil {
		return nil, err
	}
	r := &runner{
		sc: sc, eng: eng, net: net,
		slowSet:      make(map[string]bool),
		tickCost:     metrics.NewLatencyHist(),
		slowTickCost: metrics.NewLatencyHist(),
		events:       newEventCounter(),
	}
	if err := r.boot(); err != nil {
		return nil, err
	}
	if err := net.SetModel(sc.Link); err != nil {
		return nil, err
	}
	// Gray slowness engages with the real link model: the overlay converges
	// at full speed, then the slowed minority starts dragging.
	if s := sc.Slow; s != nil {
		first := len(r.nodes) - int(math.Ceil(float64(len(r.nodes))*s.Fraction))
		if first < 1 {
			first = 1 // never slow the bootstrap node
		}
		for _, sn := range r.nodes[first:] {
			net.SetSlow(sn.addr, s.Factor)
			r.slowSet[sn.addr] = true
		}
	}
	bootEnd := eng.VirtualNow()

	res := &Result{
		Scenario:   sc,
		Violations: []string{},
	}
	r.schedule(bootEnd, res)
	end := bootEnd + time.Duration(sc.TotalTicks())*sc.CheckEvery + sc.CheckEvery
	eng.RunUntil(end)
	r.finish(res, bootEnd)
	return res, nil
}

// boot builds the overlay: node 0 bootstraps the initial partition, the rest
// join sequentially (with interleaved maintenance rounds so lookups stay
// logarithmic), the ring converges, root groups migrate to their hash owners,
// and the continuous queries are registered.
func (r *runner) boot() error {
	sc := r.sc
	space := chord.DefaultSpace()
	cfg := overlay.Config{
		KeyBits:           sc.KeyBits,
		Space:             space,
		Model:             load.DefaultModel(sc.Capacity),
		BootstrapDepth:    sc.BootstrapDepth,
		StabilizeInterval: sc.StabilizeEvery,
		LoadCheckInterval: sc.CheckEvery,
		Clock:             r.eng,
		Seed:              sc.Seed,
		InlineMatchPush:   true,
		ReplicationFactor: sc.Replicas,
	}
	r.nodes = make([]*simNode, sc.Nodes)
	for i := range r.nodes {
		addr := fmt.Sprintf("sim-%04d", i)
		node, err := overlay.NewNode(r.net.Endpoint(addr), cfg)
		if err != nil {
			return err
		}
		node.SetObserver(r.events)
		r.nodes[i] = &simNode{node: node, addr: addr}
	}
	if err := r.nodes[0].node.BootstrapRoots(); err != nil {
		return err
	}
	// Join in ascending ring-position order, stabilizing the would-be
	// predecessors right after each join. Inserted this way, every new node
	// is the largest member so far, so exactly two nodes can need to adopt
	// it as successor — the previously inserted one and the bootstrap node —
	// and one stabilize round each fixes them. The ring is exact after every
	// join instead of converging one hop per round (which at 1000 nodes
	// would need ~1000 full maintenance rounds).
	rest := append([]*simNode(nil), r.nodes[1:]...)
	sort.Slice(rest, func(i, j int) bool {
		return space.HashString(rest[i].addr) < space.HashString(rest[j].addr)
	})
	prev := r.nodes[0]
	for _, sn := range rest {
		if err := sn.node.Join(r.nodes[0].addr); err != nil {
			return err
		}
		prev.node.Tick()
		r.nodes[0].node.Tick()
		prev = sn
	}
	if len(r.nodes) > 1 {
		// The bootstrap node needs a repair contact too, or losing its whole
		// successor list to a churn/partition wave islands it forever — and
		// an islanded bootstrap answers every healing lookup with itself.
		r.nodes[0].node.SetRepairContact(r.nodes[1].addr)
	}
	r.converge(3)
	// Root groups migrate to their hash owners over a couple of load checks.
	for i := 0; i < 2; i++ {
		r.checkAll()
	}

	// The scenario client: resolves depths, publishes the workload and
	// receives pushed CQ matches.
	seeds := []string{r.nodes[0].addr}
	if len(r.nodes) > 2 {
		seeds = append(seeds, r.nodes[1].addr, r.nodes[2].addr)
	}
	client, err := overlay.NewClient(r.net.Endpoint("sim-client"), sc.KeyBits, space, seeds...)
	if err != nil {
		return err
	}
	r.client = client
	// Sampling engages before the queries register, so registration traffic
	// (and the replica pushes it fans out) is traced too.
	if sc.TraceEvery > 0 {
		client.SetTraceEvery(sc.TraceEvery)
	}

	spec := workload.SpecFor(sc.Workload)
	spec.KeyBits = sc.KeyBits
	gen, err := workload.NewKeyGenerator(spec, rand.New(rand.NewSource(sc.Seed+1)))
	if err != nil {
		return err
	}
	r.gen = gen
	r.attrRng = rand.New(rand.NewSource(sc.Seed + 2))

	for i := 0; i < sc.Queries; i++ {
		region := bitkey.NewGroup(bitkey.Key{Value: uint64(gen.NextBase()), Bits: spec.BaseBits})
		q := cq.Query{
			ID:         fmt.Sprintf("q-%03d", i),
			Region:     region,
			Predicates: []cq.Predicate{{Attr: "speed", Op: cq.OpGt, Value: 50}},
		}
		if _, err := client.Register(q); err != nil {
			return fmt.Errorf("register %s: %w", q.ID, err)
		}
		r.queries = append(r.queries, q)
	}
	r.drainMatches()
	return nil
}

// converge runs full maintenance rounds over every live node.
func (r *runner) converge(rounds int) {
	for i := 0; i < rounds; i++ {
		for _, sn := range r.nodes {
			if sn.down {
				continue
			}
			sn.node.Tick()
		}
	}
	for _, sn := range r.nodes {
		if !sn.down {
			_ = sn.node.FixAllFingers()
		}
	}
}

// checkAll runs one load-check round over every live node.
func (r *runner) checkAll() {
	for _, sn := range r.nodes {
		if !sn.down {
			sn.node.LoadCheck(r.eng.Now())
		}
	}
}

// schedule installs every recurring event of the run: staggered per-node
// stabilization and load checks, per-tick traffic bursts, churn, partition
// windows and the per-tick metrics sample.
func (r *runner) schedule(base time.Duration, res *Result) {
	sc := r.sc
	ticks := sc.TotalTicks()
	n := len(r.nodes)

	// Stabilization rounds, each node offset within the interval. Each tick
	// runs under a cost trace: the simulator executes events instantaneously,
	// so the virtual time a real node would have spent blocked on its tick's
	// calls (RTTs, expired deadlines, drop timeouts) is accounted into the
	// healthy/slowed histograms — the data behind MaxHealthyTickMs.
	stabRounds := int(time.Duration(ticks)*sc.CheckEvery/sc.StabilizeEvery) + 1
	for round := 0; round < stabRounds; round++ {
		at := base + time.Duration(round)*sc.StabilizeEvery
		for i, sn := range r.nodes {
			sn := sn
			off := time.Duration(i) * sc.StabilizeEvery / time.Duration(n)
			r.eng.At(at+off, func() {
				if sn.down {
					return
				}
				cost := r.net.TraceCall(sn.node.Tick)
				if r.slowSet[sn.addr] {
					r.slowTickCost.Record(cost.Microseconds())
				} else {
					r.tickCost.Record(cost.Microseconds())
				}
			})
		}
	}

	// Load checks: every node once per tick, staggered strictly inside the
	// window ((i+1)/(n+1) offsets: never on a tick boundary, so the
	// boundary's metrics sample always runs after every check of its own
	// tick and before any check of the next).
	for tick := 0; tick < ticks; tick++ {
		at := base + time.Duration(tick)*sc.CheckEvery
		for i, sn := range r.nodes {
			sn := sn
			off := time.Duration(i+1) * sc.CheckEvery / time.Duration(n+1)
			r.eng.At(at+off, func() {
				if !sn.down {
					sn.node.LoadCheck(r.eng.Now())
				}
			})
		}
	}

	// Traffic: one burst per tick, early in the window so the same window's
	// load checks observe it.
	for tick := 0; tick < ticks; tick++ {
		tick := tick
		at := base + time.Duration(tick)*sc.CheckEvery + sc.CheckEvery/16
		r.eng.At(at, func() { r.burst(sc.phaseAt(tick)) })
	}

	// Churn.
	for _, ev := range sc.Churn {
		ev := ev
		at := base + time.Duration(ev.Tick)*sc.CheckEvery + sc.CheckEvery/64
		r.eng.At(at, func() { r.applyChurn(ev) })
	}

	// Partition window.
	if p := sc.Partition; p != nil {
		first := n - int(float64(n)*p.Fraction)
		if first < 1 {
			first = 1 // never isolate the bootstrap node from the client
		}
		r.eng.At(base+time.Duration(p.FromTick)*sc.CheckEvery, func() {
			for _, sn := range r.nodes[first:] {
				r.net.SetPartition(sn.addr, 1)
			}
		})
		r.eng.At(base+time.Duration(p.ToTick)*sc.CheckEvery, func() {
			r.net.Heal()
			// Heal protocol: the isolated side re-joins through the
			// bootstrap node (the deployment's anti-entropy for prolonged
			// isolation — two stabilized rings never re-merge on their own).
			r.rejoinBatch(r.nodes[first:])
		})
	}

	// Asymmetric-partition window: the majority's requests to the minority
	// are blackholed while the reverse direction keeps (half-)working — the
	// minority's requests deliver but their replies are lost.
	if p := sc.Asym; p != nil {
		first := n - int(float64(n)*p.Fraction)
		if first < 1 {
			first = 1 // never isolate the bootstrap node from the client
		}
		r.eng.At(base+time.Duration(p.FromTick)*sc.CheckEvery, func() {
			for _, sn := range r.nodes[first:] {
				r.net.SetAsymGroup(sn.addr, 1)
			}
			r.net.SetAsymBlocked(0, 1, true)
		})
		r.eng.At(base+time.Duration(p.ToTick)*sc.CheckEvery, func() {
			r.net.HealAsym()
			// Same heal protocol as a symmetric partition: the cut-off side
			// re-joins through the bootstrap node.
			r.rejoinBatch(r.nodes[first:])
		})
	}

	// Per-tick metrics sample at each window's end (after its load checks,
	// whose stagger stays strictly inside the window).
	for tick := 0; tick < ticks; tick++ {
		tick := tick
		at := base + time.Duration(tick+1)*sc.CheckEvery
		r.eng.At(at, func() {
			res.Ticks = append(res.Ticks, r.sample(tick, base))
		})
	}
}

// burst publishes one tick's packets.
func (r *runner) burst(p Phase) {
	sc := r.sc
	remBits := sc.KeyBits - workload.DefaultBaseBits
	for i := 0; i < p.Packets; i++ {
		var key bitkey.Key
		if p.HotShare > 0 && r.attrRng.Float64() < p.HotShare {
			rem := r.eng.Rand().Uint64() & (^uint64(0) >> uint(64-remBits))
			key = bitkey.Key{Value: uint64(p.HotBase)<<uint(remBits) | rem, Bits: sc.KeyBits}
		} else {
			key = r.gen.Next()
		}
		attrs := map[string]float64{"speed": r.attrRng.Float64() * 100}
		pr, err := r.client.Publish(key, attrs, nil)
		if err != nil {
			r.pubErrors++
		} else {
			r.packets++
			r.inline += len(pr.Matches)
		}
		r.drainMatches()
	}
}

// drainMatches counts the pushed match notifications delivered so far.
func (r *runner) drainMatches() {
	for {
		select {
		case <-r.client.Matches():
			r.delivered++
		default:
			return
		}
	}
}

// applyChurn crashes or rejoins nodes. Victims are drawn deterministically
// from the engine PRNG among the live non-bootstrap members (holder-targeted
// crashes draw from the members holding at least one active group); rejoins
// revive crashed nodes in node-index order (deterministic, unrelated to crash
// time).
func (r *runner) applyChurn(ev ChurnEvent) {
	if ev.CrashHolderFrac > 0 {
		holders := r.holders()
		if r.holdersAtFirstCrash == 0 {
			r.holdersAtFirstCrash = len(holders)
		}
		crash := int(math.Ceil(ev.CrashHolderFrac * float64(len(holders))))
		for c := 0; c < crash && len(holders) > 0; c++ {
			i := r.eng.Rand().Intn(len(holders))
			victim := holders[i]
			holders = append(holders[:i], holders[i+1:]...)
			victim.down = true
			r.net.SetDown(victim.addr, true)
			r.holdersCrashed++
		}
	}
	for c := 0; c < ev.Crash; c++ {
		var live []*simNode
		for _, sn := range r.nodes[1:] {
			if !sn.down {
				live = append(live, sn)
			}
		}
		if len(live) == 0 {
			break
		}
		victim := live[r.eng.Rand().Intn(len(live))]
		if r.holdersAtFirstCrash == 0 && len(victim.node.Server().ActiveGroups()) > 0 {
			r.holdersAtFirstCrash = r.countHolders()
		}
		if len(victim.node.Server().ActiveGroups()) > 0 {
			r.holdersCrashed++
		}
		victim.down = true
		r.net.SetDown(victim.addr, true)
	}
	var revived []*simNode
	for c := 0; c < ev.Rejoin; c++ {
		var crashed *simNode
		for _, sn := range r.nodes {
			if sn.down {
				crashed = sn
				break
			}
		}
		if crashed == nil {
			break
		}
		crashed.down = false
		r.net.SetDown(crashed.addr, false)
		revived = append(revived, crashed)
	}
	r.rejoinBatch(revived)
}

// holders returns the live non-bootstrap nodes holding at least one active
// key group.
func (r *runner) holders() []*simNode {
	var out []*simNode
	for _, sn := range r.nodes[1:] {
		if !sn.down && len(sn.node.Server().ActiveGroups()) > 0 {
			out = append(out, sn)
		}
	}
	return out
}

// countHolders counts the live non-bootstrap nodes holding at least one
// active key group.
func (r *runner) countHolders() int { return len(r.holders()) }

// rejoinBatch re-joins a set of nodes in ascending ring-position order,
// stabilizing each right after its join — the same insertion discipline boot
// uses. An unordered mass re-join through one contact can tangle the ring
// into a stable wrong state (mutually reinforcing successor/predecessor
// pairs that stabilization alone cannot untie); ordered insertion keeps every
// intermediate ring exact.
func (r *runner) rejoinBatch(batch []*simNode) {
	space := chord.DefaultSpace()
	batch = append([]*simNode(nil), batch...)
	sort.Slice(batch, func(i, j int) bool {
		return space.HashString(batch[i].addr) < space.HashString(batch[j].addr)
	})
	for _, sn := range batch {
		if sn.down {
			continue
		}
		_ = sn.node.Rejoin(r.nodes[0].addr)
		sn.node.Tick()
	}
}

// sample records one tick's metrics.
func (r *runner) sample(tick int, base time.Duration) TickSample {
	s := TickSample{
		Tick:        tick,
		VirtualSec:  (r.eng.VirtualNow() - base).Seconds(),
		Phase:       r.sc.phaseAt(tick).Name,
		DepthMin:    -1,
		Packets:     r.packets,
		PubErrors:   r.pubErrors,
		MatchInline: r.inline,
		MatchDelivd: r.delivered,
	}
	var depthSum int
	for _, sn := range r.nodes {
		if sn.down {
			continue
		}
		s.LiveNodes++
		groups := sn.node.Server().ActiveGroups()
		if len(groups) > 0 {
			s.Holders++
		}
		for _, g := range groups {
			s.Groups++
			d := g.Depth()
			depthSum += d
			if s.DepthMin < 0 || d < s.DepthMin {
				s.DepthMin = d
			}
			if d > s.DepthMax {
				s.DepthMax = d
			}
		}
		total := sn.node.Server().TotalLoad()
		s.TotalLoad += total
		if total > s.MaxLoad {
			s.MaxLoad = total
		}
		c := sn.node.Server().Counters()
		s.Splits += c.Splits
		s.Merges += c.Merges
		s.Accepted += c.GroupsAccepted
		s.Released += c.GroupsReleased
	}
	if s.Groups > 0 {
		s.DepthMean = float64(depthSum) / float64(s.Groups)
	}
	if s.DepthMin < 0 {
		s.DepthMin = 0
	}
	return s
}

// finish runs the end-of-run checks and fills the result.
func (r *runner) finish(res *Result, bootEnd time.Duration) {
	r.drainMatches()
	sc := r.sc
	res.RunVirtualSec = (r.eng.VirtualNow() - bootEnd).Seconds()

	var totals Totals
	totals.PacketsOK = r.packets
	totals.PublishErrors = r.pubErrors
	totals.MatchesInline = r.inline
	totals.MatchesDelivered = r.delivered
	depthHist := make([]int, sc.KeyBits+1)
	var groups []bitkey.Group
	for _, sn := range r.nodes {
		if sn.down {
			continue
		}
		c := sn.node.Server().Counters()
		totals.Splits += c.Splits
		totals.Merges += c.Merges
		totals.GroupsAccepted += c.GroupsAccepted
		totals.GroupsReleased += c.GroupsReleased
		res.GroupsRecovered += c.GroupsRecovered
		totals.MatchDrops += sn.node.MatchDrops()
		for _, g := range sn.node.Server().ActiveGroups() {
			depthHist[g.Depth()]++
			groups = append(groups, g)
		}
	}
	res.HoldersCrashed = r.holdersCrashed
	res.HoldersAtFirstCrash = r.holdersAtFirstCrash
	for _, sn := range r.nodes {
		st := r.net.Endpoint(sn.addr).Stats()
		totals.Timeouts += st.Timeouts
		totals.Retries += st.Retries
	}
	for _, t := range overlay.MessageTypes() {
		totals.Calls += r.net.Calls(t)
	}
	res.Totals = totals
	res.FinalDepthHist = depthHist
	if h := r.net.Latency(overlay.TypeMatch); h != nil {
		// The histograms record virtual microseconds; report milliseconds.
		res.MatchLatencyMs = msSummary(h.Summary())
	}
	res.TickCostMs = msSummary(r.tickCost.Summary())
	if s := r.slowTickCost.Summary(); s.Count > 0 {
		ms := msSummary(s)
		res.SlowTickCostMs = &ms
	}
	res.Events = r.events.snapshot()
	// The span report is built before the durability probes run, so — like
	// the headline counters — it covers only the scenario's own traffic.
	res.Spans = buildSpanReport(r.events.spanSnapshot(), r.net)
	res.CoverageComplete, res.CoverageOverlaps = coverage(sc.KeyBits, groups)
	res.RingDrift = r.ringDrift()
	res.RingConverged = res.RingDrift == 0
	// The durability check runs after the totals snapshot, so its probe
	// traffic never perturbs the headline counters.
	r.checkDurability(res, sc.Expect.ZeroLostCQ)

	ex := sc.Expect
	if totals.Splits < ex.MinSplits {
		res.Violations = append(res.Violations,
			fmt.Sprintf("splits %d < expected %d", totals.Splits, ex.MinSplits))
	}
	if totals.Merges < ex.MinMerges {
		res.Violations = append(res.Violations,
			fmt.Sprintf("merges %d < expected %d", totals.Merges, ex.MinMerges))
	}
	if ex.AllMatchesDelivered {
		if totals.MatchesDelivered != totals.MatchesInline || totals.MatchDrops != 0 {
			res.Violations = append(res.Violations,
				fmt.Sprintf("matches delivered %d != matched %d (drops %d)",
					totals.MatchesDelivered, totals.MatchesInline, totals.MatchDrops))
		}
	}
	if ex.CoverageComplete && !res.CoverageComplete {
		res.Violations = append(res.Violations,
			fmt.Sprintf("active groups do not cover the key space (%d overlaps)", res.CoverageOverlaps))
	}
	if ex.RingConverged && !res.RingConverged {
		res.Violations = append(res.Violations,
			fmt.Sprintf("chord ring did not converge over the live nodes (%d stale successors)", res.RingDrift))
	}
	if ex.MaxRingDrift > 0 && res.RingDrift > ex.MaxRingDrift {
		res.Violations = append(res.Violations,
			fmt.Sprintf("ring drift %d exceeds the allowed %d", res.RingDrift, ex.MaxRingDrift))
	}
	if ex.ZeroLostCQ {
		if res.CQSurviving != res.CQRegistered {
			res.Violations = append(res.Violations,
				fmt.Sprintf("lost %d of %d continuous queries to crashes (e.g. %v)",
					res.CQRegistered-res.CQSurviving, res.CQRegistered, res.LostCQs))
		}
		if res.CQProbeMisses > 0 {
			res.Violations = append(res.Violations,
				fmt.Sprintf("%d of %d end-of-run probes did not match their query",
					res.CQProbeMisses, res.CQRegistered))
		}
	}
	if ex.MinHolderCrashFrac > 0 {
		base := res.HoldersAtFirstCrash
		if base == 0 || float64(res.HoldersCrashed) < ex.MinHolderCrashFrac*float64(base) {
			res.Violations = append(res.Violations,
				fmt.Sprintf("churn crashed %d of %d holders, below the required fraction %.2f",
					res.HoldersCrashed, base, ex.MinHolderCrashFrac))
		}
	}
	if ex.MaxHealthyTickMs > 0 && res.TickCostMs.P99 > ex.MaxHealthyTickMs {
		res.Violations = append(res.Violations,
			fmt.Sprintf("healthy-node tick cost p99 %.1fms exceeds the allowed %.1fms",
				res.TickCostMs.P99, ex.MaxHealthyTickMs))
	}
	if ex.SpansComplete {
		switch {
		case res.Spans == nil || res.Spans.Traces == 0:
			res.Violations = append(res.Violations,
				"no sampled traces recorded any hop spans")
		case res.Spans.Complete != res.Spans.Traces:
			res.Violations = append(res.Violations,
				fmt.Sprintf("%d of %d sampled traces have disconnected or multi-rooted span trees (e.g. %v)",
					res.Spans.Traces-res.Spans.Complete, res.Spans.Traces, res.Spans.Incomplete))
		}
	}
	if ex.EventsConsistent {
		splitEvents := res.Events[overlay.EventSplit]
		if splitEvents > totals.Splits || (splitEvents == 0) != (totals.Splits == 0) {
			res.Violations = append(res.Violations,
				fmt.Sprintf("%d split events inconsistent with %d counted splits", splitEvents, totals.Splits))
		}
		if mergeEvents := res.Events[overlay.EventMerge]; mergeEvents != totals.Merges {
			res.Violations = append(res.Violations,
				fmt.Sprintf("%d merge events != %d counted merges", mergeEvents, totals.Merges))
		}
		recEvents := res.Events[overlay.EventRecovery]
		if recEvents > res.GroupsRecovered || (recEvents == 0) != (res.GroupsRecovered == 0) {
			res.Violations = append(res.Violations,
				fmt.Sprintf("%d recovery events inconsistent with %d recovered groups", recEvents, res.GroupsRecovered))
		}
	}
}

// msSummary converts a microsecond latency summary into milliseconds.
func msSummary(s metrics.Summary) metrics.Summary {
	return metrics.Summary{
		Count: s.Count,
		Min:   s.Min / 1e3,
		Max:   s.Max / 1e3,
		Mean:  s.Mean / 1e3,
		P50:   s.P50 / 1e3,
		P95:   s.P95 / 1e3,
		P99:   s.P99 / 1e3,
	}
}

// checkDurability fills the continuous-query survival fields: the structural
// check walks every live node's engine and requires each boot-registered
// query to still be stored somewhere; with probe set, it additionally
// publishes one matching packet into each query's region and requires the
// accepting server to report the query matched — proof the recovered state
// actually serves traffic, not just that the bytes survived.
func (r *runner) checkDurability(res *Result, probe bool) {
	res.CQRegistered = len(r.queries)
	if len(r.queries) == 0 {
		return
	}
	stored := make(map[string]bool)
	for _, sn := range r.nodes {
		if sn.down {
			continue
		}
		for _, q := range sn.node.Engine().All() {
			stored[q.ID] = true
		}
	}
	for _, q := range r.queries {
		if stored[q.ID] {
			res.CQSurviving++
		} else if len(res.LostCQs) < 16 {
			res.LostCQs = append(res.LostCQs, q.ID)
		}
	}
	if !probe {
		return
	}
	for _, q := range r.queries {
		key, err := q.Region.VirtualKey(r.sc.KeyBits)
		if err != nil {
			res.CQProbeMisses++
			continue
		}
		hit := false
		for attempt := 0; attempt < 3 && !hit; attempt++ {
			pr, err := r.client.Publish(key, map[string]float64{"speed": 99}, nil)
			if err != nil {
				continue
			}
			for _, id := range pr.Matches {
				if id == q.ID {
					hit = true
					break
				}
			}
		}
		if !hit {
			res.CQProbeMisses++
		}
		r.drainMatches()
	}
}

// ringDrift counts live nodes whose successor pointer disagrees with the
// true ring order (successors sorted by chord position). Zero means a fully
// converged ring.
func (r *runner) ringDrift() int {
	space := chord.DefaultSpace()
	type member struct {
		sn *simNode
		id chord.ID
	}
	var live []member
	for _, sn := range r.nodes {
		if !sn.down {
			live = append(live, member{sn: sn, id: space.HashString(sn.addr)})
		}
	}
	if len(live) < 2 {
		return 0
	}
	sort.Slice(live, func(i, j int) bool { return live[i].id < live[j].id })
	drift := 0
	for i, m := range live {
		want := live[(i+1)%len(live)].sn.addr
		succs := m.sn.node.Successors()
		if len(succs) == 0 || succs[0].Addr != want {
			drift++
		}
	}
	return drift
}

// coverage reports whether the groups exactly partition the N-bit key space,
// and how many overlapping key points the set has (0 when prefix-free).
func coverage(keyBits int, groups []bitkey.Group) (complete bool, overlaps int) {
	type span struct{ start, end uint64 }
	spans := make([]span, 0, len(groups))
	for _, g := range groups {
		w := uint64(1) << uint(keyBits-g.Depth())
		start := g.Prefix.Value << uint(keyBits-g.Depth())
		spans = append(spans, span{start: start, end: start + w})
	}
	// Sort by start, then by end; count overlap and check adjacency.
	sort.Slice(spans, func(i, j int) bool {
		if spans[i].start != spans[j].start {
			return spans[i].start < spans[j].start
		}
		return spans[i].end < spans[j].end
	})
	complete = true
	var pos uint64
	for _, s := range spans {
		if s.start < pos {
			overlaps++
			complete = false
			if s.end > pos {
				pos = s.end
			}
			continue
		}
		if s.start > pos {
			complete = false
		}
		pos = s.end
	}
	if pos != uint64(1)<<uint(keyBits) {
		complete = false
	}
	return complete, overlaps
}
