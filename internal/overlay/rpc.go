package overlay

import (
	"encoding/json"
	"fmt"

	"clash/internal/chord"
)

// transportRPC implements chord.RPC by sending framed JSON requests through a
// Transport. Any transport failure surfaces as chord.ErrNodeDown so the chord
// maintenance logic treats it as a peer failure and repairs around it.
type transportRPC struct {
	tr Transport
}

var _ chord.RPC = (*transportRPC)(nil)

func refToMsg(r chord.NodeRef) nodeRefMsg { return nodeRefMsg{Addr: r.Addr, ID: uint64(r.ID)} }
func msgToRef(m nodeRefMsg) chord.NodeRef { return chord.NodeRef{Addr: m.Addr, ID: chord.ID(m.ID)} }

// call marshals req, performs the exchange and unmarshals into resp (which
// may be nil for fire-and-forget replies).
func (c *transportRPC) call(addr, msgType string, req, resp any) error {
	var payload []byte
	if req != nil {
		var err error
		payload, err = json.Marshal(req)
		if err != nil {
			return fmt.Errorf("overlay: marshal %s: %w", msgType, err)
		}
	}
	reply, err := c.tr.Call(addr, msgType, payload)
	if err != nil {
		if IsRemote(err) {
			return err
		}
		return fmt.Errorf("%w: %s (%v)", chord.ErrNodeDown, addr, err)
	}
	if resp == nil {
		return nil
	}
	if err := json.Unmarshal(reply, resp); err != nil {
		return fmt.Errorf("overlay: unmarshal %s reply: %w", msgType, err)
	}
	return nil
}

// FindSuccessor implements chord.RPC.
func (c *transportRPC) FindSuccessor(ref chord.NodeRef, id chord.ID) (chord.NodeRef, error) {
	var resp nodeRefMsg
	if err := c.call(ref.Addr, TypeFindSuccessor, findSuccessorMsg{ID: uint64(id)}, &resp); err != nil {
		return chord.NodeRef{}, err
	}
	return msgToRef(resp), nil
}

// Predecessor implements chord.RPC.
func (c *transportRPC) Predecessor(ref chord.NodeRef) (chord.NodeRef, error) {
	var resp nodeRefMsg
	if err := c.call(ref.Addr, TypePredecessor, nil, &resp); err != nil {
		return chord.NodeRef{}, err
	}
	return msgToRef(resp), nil
}

// Notify implements chord.RPC.
func (c *transportRPC) Notify(ref chord.NodeRef, candidate chord.NodeRef) error {
	return c.call(ref.Addr, TypeNotify, notifyMsg{Candidate: refToMsg(candidate)}, nil)
}

// Ping implements chord.RPC.
func (c *transportRPC) Ping(ref chord.NodeRef) error {
	return c.call(ref.Addr, TypePing, nil, nil)
}
