package poolcheck_test

import (
	"testing"

	"clash/internal/analysis/analysistest"
	"clash/internal/analysis/poolcheck"
)

func TestPoolCheck(t *testing.T) {
	analysistest.Run(t, "testdata", poolcheck.Analyzer, "pool")
}
