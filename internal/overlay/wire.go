// Package overlay is the live CLASH overlay: it wires the transport-agnostic
// protocol pieces (chord.Node, core.Server, cq.Engine, load.Meter) into
// networked nodes and clients exchanging real messages.
//
// The wire protocol is a hand-rolled binary codec over length-prefixed,
// sequence-numbered frames:
//
//	offset  size  field
//	0       4     payload length (big-endian uint32)
//	4       8     sequence ID   (big-endian uint64)
//	12      1     protocol version (wireVersion)
//	13      1     message type byte
//	14      n     payload (message-specific binary encoding, wirecodec)
//
// Requests carry a caller-chosen sequence ID; the matching reply echoes it
// with type typeReplyOK (payload = encoded reply message) or typeReplyErr
// (payload = error text). Because replies are matched by sequence ID rather
// than by position, many calls can be in flight on one connection at once
// and replies may arrive out of order (see tcp.go). The same framing is used
// by the TCP transport and — byte for byte — by the in-memory transport, so
// deterministic tests exercise the exact encoding production traffic uses.
//
// Versioning: the version byte names the frame layout and the per-message
// field layout as a whole. Within one version, message fields may only ever
// be appended (decoders ignore unrecognised trailing bytes); any
// incompatible change bumps wireVersion, and a reader that sees an unknown
// version closes the connection as corrupt.
package overlay

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"slices"

	"clash/internal/wirecodec"
)

// Wire message types (protocol names). The clash.* types correspond
// one-to-one to the protocol messages in internal/core/messages.go; the
// chord.* types carry the chord.RPC surface. On the wire each name travels
// as a single type byte (see typeByte/typeName).
const (
	// TypeFindSuccessor asks a node to resolve the successor of a hash point.
	TypeFindSuccessor = "chord.find_successor"
	// TypePredecessor asks a node for its current predecessor.
	TypePredecessor = "chord.predecessor"
	// TypeSuccessor asks a node for its current immediate successor (a
	// single pointer read — no routing, see chord.RPC.Successor).
	TypeSuccessor = "chord.successor"
	// TypeNotify tells a node about a possible predecessor.
	TypeNotify = "chord.notify"
	// TypePing checks liveness.
	TypePing = "chord.ping"

	// TypeAcceptObject carries a data packet or query registration
	// (core.MsgAcceptObject).
	TypeAcceptObject = "clash.accept_object"
	// TypeAcceptBatch carries a vector of ACCEPT_OBJECT bodies in one frame
	// (core.MsgAcceptBatch).
	TypeAcceptBatch = "clash.accept_batch"
	// TypeAcceptKeyGroup transfers a key group and its query state
	// (core.MsgAcceptKeyGroup).
	TypeAcceptKeyGroup = "clash.accept_keygroup"
	// TypeLoadReport is the periodic leaf→parent load report
	// (core.MsgLoadReport).
	TypeLoadReport = "clash.load_report"
	// TypeReleaseKeyGroup reclaims a key group during consolidation
	// (core.MsgReleaseKeyGroup).
	TypeReleaseKeyGroup = "clash.release_keygroup"
	// TypeMatch pushes a continuous-query match to the subscriber that
	// registered the query.
	TypeMatch = "clash.match"
	// TypeChildMoved tells the parent of a transferred right child that the
	// child group was re-homed to a different server (DHT ownership change),
	// so load reports from the new holder are accepted and consolidation
	// keeps working.
	TypeChildMoved = "clash.child_moved"
	// TypeStatus returns a node's JSON status snapshot.
	TypeStatus = "clash.status"
	// TypeReplicateKeyGroup pushes a node's full replicable key-group state
	// (group snapshots + their continuous-query state) to a successor, which
	// stores it keyed by origin. Pushed to the first k live successors on
	// every split, merge, transfer and CQ registration, and re-pushed every
	// load-check period and on successor-list changes, so replicas follow
	// ring churn.
	TypeReplicateKeyGroup = "clash.replicate_keygroup"
	// TypeRecoverKeyGroups asks a peer for the replica set it stores for a
	// given origin. A node rejoining after a crash queries its successors and
	// restores the freshest copy of its own pre-crash state.
	TypeRecoverKeyGroups = "clash.recover_keygroups"
	// TypeTopology asks a node for its topology snapshot (ring pointers,
	// active groups with loads, replica origins). The hub's /topology
	// endpoint walks the ring with it.
	TypeTopology = "clash.topology"
)

// Wire type bytes. Request types live below 0xF0; the two reply types sit at
// the top of the space. New types are appended, never renumbered (renumbering
// is an incompatible change and would bump wireVersion).
const (
	typeFindSuccessor     byte = 0x01
	typePredecessor       byte = 0x02
	typeNotify            byte = 0x03
	typePing              byte = 0x04
	typeAcceptObject      byte = 0x10
	typeAcceptBatch       byte = 0x11
	typeAcceptKeyGroup    byte = 0x12
	typeLoadReport        byte = 0x13
	typeReleaseKeyGroup   byte = 0x14
	typeMatch             byte = 0x15
	typeChildMoved        byte = 0x16
	typeStatus            byte = 0x17
	typeSuccessor         byte = 0x18
	typeReplicateKeyGroup byte = 0x19
	typeRecoverKeyGroups  byte = 0x1A
	typeTopology          byte = 0x1B

	typeReplyOK  byte = 0xF0
	typeReplyErr byte = 0xF1
	// typeReplyShed answers a request the server refused under overload
	// without dispatching it; the payload is explanatory text. The caller
	// surfaces it as ErrShed (retryable for any message type, since the
	// handler never ran).
	typeReplyShed byte = 0xF2
)

// typeRegistry maps protocol names to type bytes; nameRegistry is the
// inverse, indexed by type byte for allocation-free lookup on the read path.
var (
	typeRegistry = map[string]byte{
		TypeFindSuccessor:     typeFindSuccessor,
		TypePredecessor:       typePredecessor,
		TypeNotify:            typeNotify,
		TypePing:              typePing,
		TypeAcceptObject:      typeAcceptObject,
		TypeAcceptBatch:       typeAcceptBatch,
		TypeAcceptKeyGroup:    typeAcceptKeyGroup,
		TypeLoadReport:        typeLoadReport,
		TypeReleaseKeyGroup:   typeReleaseKeyGroup,
		TypeMatch:             typeMatch,
		TypeChildMoved:        typeChildMoved,
		TypeStatus:            typeStatus,
		TypeSuccessor:         typeSuccessor,
		TypeReplicateKeyGroup: typeReplicateKeyGroup,
		TypeRecoverKeyGroups:  typeRecoverKeyGroups,
		TypeTopology:          typeTopology,
	}
	nameRegistry [256]string
)

func init() {
	for name, b := range typeRegistry {
		nameRegistry[b] = name
	}
}

// typeByte resolves a protocol name to its wire byte.
func typeByte(name string) (byte, error) {
	b, ok := typeRegistry[name]
	if !ok {
		return 0, fmt.Errorf("%w: unregistered message type %q", ErrBadFrame, name)
	}
	return b, nil
}

// typeName resolves a wire byte to its protocol name ("" when unknown; an
// unknown request type is answered with a framed error, not a closed
// connection).
func typeName(b byte) string { return nameRegistry[b] }

// MessageTypes returns every registered protocol message name, sorted. The
// simulator iterates it to aggregate per-type counters, so a newly added
// wire type is picked up without a second hand-maintained list.
func MessageTypes() []string {
	out := make([]string, 0, len(typeRegistry))
	for name := range typeRegistry {
		out = append(out, name)
	}
	slices.Sort(out)
	return out
}

// Frame geometry.
const (
	// wireVersion is the frame-layout version emitted and accepted.
	wireVersion = 1
	// frameHeaderSize is the fixed header: length + seq + version + type.
	frameHeaderSize = 4 + 8 + 1 + 1
	// FrameOverhead is the per-message framing cost in bytes, exported so
	// transports outside this package (the simulator's) account frame bytes
	// the same way the real ones do.
	FrameOverhead = frameHeaderSize
	// maxFrameSize bounds a frame payload to keep a malformed or hostile
	// peer from forcing an unbounded allocation.
	maxFrameSize = 16 << 20
	// frameReadChunk caps how much payload is allocated ahead of the bytes
	// actually received, bounding the damage of a length header whose
	// payload never arrives.
	frameReadChunk = 64 << 10
)

// Framing errors.
var (
	// ErrFrameTooLarge is returned when a frame payload exceeds maxFrameSize.
	// On the read side it is recoverable: the oversized payload has been
	// skipped and the connection remains framed (readFrame returns the header
	// so the server can answer with a framed error).
	ErrFrameTooLarge = errors.New("overlay: frame exceeds size limit")
	// ErrBadFrame is returned when a frame is structurally invalid
	// (unknown version, unregistered type on the write path). It is
	// unrecoverable on the read side: framing sync cannot be trusted.
	ErrBadFrame = errors.New("overlay: malformed frame")
)

// frame is one decoded wire frame.
type frame struct {
	seq     uint64
	typ     byte
	payload []byte
}

// appendFrame appends the complete frame encoding to dst. It is the single
// encoder both transports use, which is what keeps them byte-identical.
func appendFrame(dst []byte, seq uint64, typ byte, payload []byte) ([]byte, error) {
	if len(payload) > maxFrameSize {
		return dst, fmt.Errorf("%w: %d bytes", ErrFrameTooLarge, len(payload))
	}
	dst = binary.BigEndian.AppendUint32(dst, uint32(len(payload)))
	dst = binary.BigEndian.AppendUint64(dst, seq)
	dst = append(dst, wireVersion, typ)
	return append(dst, payload...), nil
}

// readFrame reads one frame from r. The payload is freshly allocated, so it
// may escape to application code (the client-side demux path hands reply
// payloads to callers that keep them).
func readFrame(r io.Reader) (frame, error) {
	return readFrameInto(r, nil)
}

// readFrameInto reads one frame from r, reading the payload into buf
// (typically a pooled wirecodec buffer) — the zero-copy entry of the pooled
// request path: the payload buffer travels from the socket read through
// decode and dispatch and back to the pool after the reply is flushed. The
// returned frame's payload is buf, grown as needed, on EVERY return path
// (even errors), so the caller can always recycle f.payload with PutBuf. A
// nil buf allocates fresh (readFrame's behaviour).
//
// When the advertised payload exceeds maxFrameSize, the payload is discarded
// from the stream and the decoded header is returned alongside
// ErrFrameTooLarge: framing stays intact, so the caller can answer with a
// framed error and keep the connection. Any other error (short read, unknown
// version) is unrecoverable.
func readFrameInto(r io.Reader, buf []byte) (frame, error) {
	f := frame{payload: buf[:0]}
	var hdr [frameHeaderSize]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return f, err
	}
	n := binary.BigEndian.Uint32(hdr[0:4])
	f.seq = binary.BigEndian.Uint64(hdr[4:12])
	f.typ = hdr[13]
	if ver := hdr[12]; ver != wireVersion {
		return f, fmt.Errorf("%w: version %d, want %d", ErrBadFrame, ver, wireVersion)
	}
	if n > maxFrameSize {
		// Recoverable: skip the oversized payload so the stream stays framed.
		if _, err := io.CopyN(io.Discard, r, int64(n)); err != nil {
			return f, err
		}
		return f, fmt.Errorf("%w: %d bytes", ErrFrameTooLarge, n)
	}
	// Read the payload in capped chunks growing with the data that actually
	// arrives, so a malformed header declaring a huge length cannot force a
	// huge allocation before the stream runs dry.
	remaining := int(n)
	for remaining > 0 {
		k := remaining
		if k > frameReadChunk {
			k = frameReadChunk
		}
		start := len(f.payload)
		f.payload = slices.Grow(f.payload, k)[:start+k]
		if _, err := io.ReadFull(r, f.payload[start:]); err != nil {
			return f, err
		}
		remaining -= k
	}
	return f, nil
}

// wireMsg is a protocol message with the hand-rolled binary codec.
type wireMsg interface {
	// MarshalWire appends the message encoding to b and returns the grown
	// buffer (append-style, allocation-free into a pooled buffer).
	MarshalWire(b []byte) []byte
	// UnmarshalWire decodes the message from data. Byte-slice fields may
	// alias data.
	UnmarshalWire(data []byte) error
}

// nodeRefMsg is the wire form of a chord.NodeRef.
type nodeRefMsg struct {
	Addr string `json:"addr"`
	ID   uint64 `json:"id"`
}

// MarshalWire implements wireMsg.
func (m *nodeRefMsg) MarshalWire(b []byte) []byte {
	b = wirecodec.AppendString(b, m.Addr)
	return wirecodec.AppendUvarint(b, m.ID)
}

// UnmarshalWire implements wireMsg.
func (m *nodeRefMsg) UnmarshalWire(data []byte) error {
	r := wirecodec.NewReader(data)
	m.Addr = r.String()
	m.ID = r.Uvarint()
	return r.Err()
}

// findSuccessorMsg is the payload of TypeFindSuccessor.
type findSuccessorMsg struct {
	ID uint64 `json:"id"`
}

// MarshalWire implements wireMsg.
func (m *findSuccessorMsg) MarshalWire(b []byte) []byte {
	return wirecodec.AppendUvarint(b, m.ID)
}

// UnmarshalWire implements wireMsg.
func (m *findSuccessorMsg) UnmarshalWire(data []byte) error {
	r := wirecodec.NewReader(data)
	m.ID = r.Uvarint()
	return r.Err()
}

// notifyMsg is the payload of TypeNotify.
type notifyMsg struct {
	Candidate nodeRefMsg `json:"candidate"`
}

// MarshalWire implements wireMsg.
func (m *notifyMsg) MarshalWire(b []byte) []byte {
	return m.Candidate.MarshalWire(b)
}

// UnmarshalWire implements wireMsg.
func (m *notifyMsg) UnmarshalWire(data []byte) error {
	return m.Candidate.UnmarshalWire(data)
}

// dataMsg is the application payload of a kind=data ACCEPT_OBJECT: the
// attribute map the continuous-query predicates evaluate plus the opaque
// record. Attribute iteration order is not part of the encoding contract
// (round-trip preserves the map, not the byte order across separate encodes).
type dataMsg struct {
	Attrs   map[string]float64 `json:"attrs,omitempty"`
	Payload []byte             `json:"payload,omitempty"`
}

// MarshalWire implements wireMsg.
func (m *dataMsg) MarshalWire(b []byte) []byte {
	b = appendAttrs(b, m.Attrs)
	return wirecodec.AppendBytes(b, m.Payload)
}

// appendAttrs encodes a count-prefixed attribute map (the encode mirror of
// readAttrs; both message types carrying attrs share the pair).
func appendAttrs(b []byte, attrs map[string]float64) []byte {
	b = wirecodec.AppendInt(b, len(attrs))
	for k, v := range attrs {
		b = wirecodec.AppendString(b, k)
		b = wirecodec.AppendFloat64(b, v)
	}
	return b
}

// UnmarshalWire implements wireMsg. Payload aliases data.
func (m *dataMsg) UnmarshalWire(data []byte) error {
	r := wirecodec.NewReader(data)
	var err error
	m.Attrs, err = readAttrs(r)
	if err != nil {
		return err
	}
	m.Payload = r.Bytes()
	return r.Err()
}

// readAttrs decodes a count-prefixed attribute map, validating the count
// against the minimum encoded size per entry (1-byte name length + 8-byte
// float) so a hostile count cannot force a huge map pre-allocation.
func readAttrs(r *wirecodec.Reader) (map[string]float64, error) {
	n := r.Int()
	if r.Err() == nil && n > r.Len()/9 {
		return nil, fmt.Errorf("%w: %d attrs in %d bytes", wirecodec.ErrInvalid, n, r.Len())
	}
	if n == 0 {
		return nil, r.Err()
	}
	attrs := make(map[string]float64, n)
	for i := 0; i < n && r.Err() == nil; i++ {
		k := r.String()
		attrs[k] = r.Float64()
	}
	return attrs, r.Err()
}

// queryState is the application payload of a kind=query ACCEPT_OBJECT and the
// per-query unit of state transfer: the serialised cq.Query plus the transport
// address match notifications are pushed to.
type queryState struct {
	Query      []byte `json:"query"`
	Subscriber string `json:"subscriber,omitempty"`
}

// MarshalWire implements wireMsg.
func (m *queryState) MarshalWire(b []byte) []byte {
	b = wirecodec.AppendBytes(b, m.Query)
	return wirecodec.AppendString(b, m.Subscriber)
}

// UnmarshalWire implements wireMsg. Query aliases data.
func (m *queryState) UnmarshalWire(data []byte) error {
	r := wirecodec.NewReader(data)
	m.Query = r.Bytes()
	m.Subscriber = r.String()
	return r.Err()
}

// childMovedMsg is the payload of TypeChildMoved.
type childMovedMsg struct {
	GroupValue uint64 `json:"groupValue"`
	GroupBits  int    `json:"groupBits"`
	Holder     string `json:"holder"`
}

// MarshalWire implements wireMsg.
func (m *childMovedMsg) MarshalWire(b []byte) []byte {
	b = wirecodec.AppendInt(b, m.GroupBits)
	b = wirecodec.AppendUvarint(b, m.GroupValue)
	return wirecodec.AppendString(b, m.Holder)
}

// UnmarshalWire implements wireMsg.
func (m *childMovedMsg) UnmarshalWire(data []byte) error {
	r := wirecodec.NewReader(data)
	m.GroupBits = r.Int()
	m.GroupValue = r.Uvarint()
	m.Holder = r.String()
	return r.Err()
}

// matchMsg is the payload of TypeMatch.
type matchMsg struct {
	QueryID  string             `json:"queryId"`
	KeyValue uint64             `json:"keyValue"`
	KeyBits  int                `json:"keyBits"`
	Attrs    map[string]float64 `json:"attrs,omitempty"`
	Payload  []byte             `json:"payload,omitempty"`
	// TraceID/ParentSpan/Hop carry the sampled publish's trace context onto
	// the subscriber-delivery hop so the receiving node's span joins the
	// cross-node tree. All zero for untraced publishes and from pre-span
	// writers. Appended after the original fields per the wire-evolution
	// rule.
	TraceID    uint64 `json:"traceId,omitempty"`
	ParentSpan uint64 `json:"parentSpan,omitempty"`
	Hop        int    `json:"hop,omitempty"`
}

// MarshalWire implements wireMsg. The trace context is appended after the
// original fields (append-only evolution: an old reader ignores it).
func (m *matchMsg) MarshalWire(b []byte) []byte {
	b = wirecodec.AppendString(b, m.QueryID)
	b = wirecodec.AppendInt(b, m.KeyBits)
	b = wirecodec.AppendUvarint(b, m.KeyValue)
	b = appendAttrs(b, m.Attrs)
	b = wirecodec.AppendBytes(b, m.Payload)
	b = wirecodec.AppendUvarint(b, m.TraceID)
	b = wirecodec.AppendUvarint(b, m.ParentSpan)
	return wirecodec.AppendInt(b, m.Hop)
}

// UnmarshalWire implements wireMsg. Payload aliases data. A frame from an
// old writer carries no trace context; it decodes as untraced.
func (m *matchMsg) UnmarshalWire(data []byte) error {
	r := wirecodec.NewReader(data)
	m.QueryID = r.String()
	m.KeyBits = r.Int()
	m.KeyValue = r.Uvarint()
	var err error
	m.Attrs, err = readAttrs(r)
	if err != nil {
		return err
	}
	m.Payload = r.Bytes()
	m.TraceID, m.ParentSpan, m.Hop = 0, 0, 0
	if r.Err() == nil && r.Len() > 0 {
		m.TraceID = r.Uvarint()
		m.ParentSpan = r.Uvarint()
		m.Hop = r.Int()
	}
	return r.Err()
}

// replicaGroupRec is one key group's replicable state inside a replica set:
// the core.GroupSnapshot fields plus the group's serialised continuous
// queries (queryState records). It travels as a length-prefixed record inside
// replicateMsg, which keeps the append-only field-evolution rule valid for
// the nested layout.
type replicaGroupRec struct {
	GroupValue uint64   `json:"groupValue"`
	GroupBits  int      `json:"groupBits"`
	Parent     string   `json:"parent,omitempty"`
	IsRoot     bool     `json:"isRoot,omitempty"`
	Epoch      uint64   `json:"epoch,omitempty"`
	Queries    [][]byte `json:"queries,omitempty"`
}

// MarshalWire implements wireMsg.
func (m *replicaGroupRec) MarshalWire(b []byte) []byte {
	b = wirecodec.AppendInt(b, m.GroupBits)
	b = wirecodec.AppendUvarint(b, m.GroupValue)
	b = wirecodec.AppendString(b, m.Parent)
	b = wirecodec.AppendBool(b, m.IsRoot)
	b = wirecodec.AppendUvarint(b, m.Epoch)
	b = wirecodec.AppendInt(b, len(m.Queries))
	for _, q := range m.Queries {
		b = wirecodec.AppendBytes(b, q)
	}
	return b
}

// UnmarshalWire implements wireMsg. Query entries alias data.
func (m *replicaGroupRec) UnmarshalWire(data []byte) error {
	r := wirecodec.NewReader(data)
	m.GroupBits = r.Int()
	m.GroupValue = r.Uvarint()
	m.Parent = r.String()
	m.IsRoot = r.Bool()
	m.Epoch = r.Uvarint()
	n := r.Int()
	if r.Err() == nil && n > r.Len() {
		return fmt.Errorf("%w: %d queries in %d bytes", wirecodec.ErrInvalid, n, r.Len())
	}
	m.Queries = nil
	for i := 0; i < n && r.Err() == nil; i++ {
		m.Queries = append(m.Queries, r.Bytes())
	}
	return r.Err()
}

// replicateMsg is the payload of TypeReplicateKeyGroup and the reply of
// TypeRecoverKeyGroups: one node's complete replicable key-group state. The
// receiver replaces its stored set for Origin whenever (Incarnation, Version)
// is not older than the stored pair — full-state replacement, so a group the
// origin shed disappears from the replica without tombstones. Loose carries
// query state the origin holds outside its engine (parked transfers, orphaned
// placements awaiting re-homing); on recovery it is re-placed through depth
// resolution rather than installed under a group.
type replicateMsg struct {
	Origin      string            `json:"origin"`
	Incarnation uint64            `json:"incarnation"`
	Version     uint64            `json:"version"`
	Groups      []replicaGroupRec `json:"groups,omitempty"`
	Loose       [][]byte          `json:"loose,omitempty"`
	// TraceID/ParentSpan/Hop carry a sampled publish's trace context onto the
	// replica-push hop when the push was triggered while handling that
	// publish, so the replica's span joins the cross-node tree. All zero for
	// untriggered (maintenance) pushes and from pre-span writers. Appended
	// after Loose per the wire-evolution rule.
	TraceID    uint64 `json:"traceId,omitempty"`
	ParentSpan uint64 `json:"parentSpan,omitempty"`
	Hop        int    `json:"hop,omitempty"`
}

// MarshalWire implements wireMsg. Each group is a length-prefixed record
// sharing the replicaGroupRec encoder; Loose (PR 8) and the trace context
// (PR 9) are appended after the original fields (append-only evolution).
func (m *replicateMsg) MarshalWire(b []byte) []byte {
	b = wirecodec.AppendString(b, m.Origin)
	b = wirecodec.AppendUvarint(b, m.Incarnation)
	b = wirecodec.AppendUvarint(b, m.Version)
	b = wirecodec.AppendInt(b, len(m.Groups))
	scratch := wirecodec.GetBuf()
	for i := range m.Groups {
		scratch = m.Groups[i].MarshalWire(scratch[:0])
		b = wirecodec.AppendBytes(b, scratch)
	}
	wirecodec.PutBuf(scratch)
	b = wirecodec.AppendInt(b, len(m.Loose))
	for _, q := range m.Loose {
		b = wirecodec.AppendBytes(b, q)
	}
	b = wirecodec.AppendUvarint(b, m.TraceID)
	b = wirecodec.AppendUvarint(b, m.ParentSpan)
	return wirecodec.AppendInt(b, m.Hop)
}

// UnmarshalWire implements wireMsg. Nested byte fields alias data. A frame
// from an old writer carries no Loose section; it decodes empty.
func (m *replicateMsg) UnmarshalWire(data []byte) error {
	r := wirecodec.NewReader(data)
	m.Origin = r.String()
	m.Incarnation = r.Uvarint()
	m.Version = r.Uvarint()
	n := r.Int()
	if r.Err() == nil && n > r.Len() {
		return fmt.Errorf("%w: %d replica groups in %d bytes", wirecodec.ErrInvalid, n, r.Len())
	}
	m.Groups = nil
	for i := 0; i < n && r.Err() == nil; i++ {
		rec := r.Bytes()
		if r.Err() != nil {
			break
		}
		var g replicaGroupRec
		if err := g.UnmarshalWire(rec); err != nil {
			return err
		}
		m.Groups = append(m.Groups, g)
	}
	m.Loose = nil
	if r.Err() == nil && r.Len() > 0 {
		k := r.Int()
		if r.Err() == nil && k > r.Len() {
			return fmt.Errorf("%w: %d loose queries in %d bytes", wirecodec.ErrInvalid, k, r.Len())
		}
		for i := 0; i < k && r.Err() == nil; i++ {
			m.Loose = append(m.Loose, r.Bytes())
		}
	}
	m.TraceID, m.ParentSpan, m.Hop = 0, 0, 0
	if r.Err() == nil && r.Len() > 0 {
		m.TraceID = r.Uvarint()
		m.ParentSpan = r.Uvarint()
		m.Hop = r.Int()
	}
	return r.Err()
}

// recoverMsg is the request payload of TypeRecoverKeyGroups.
type recoverMsg struct {
	Origin string `json:"origin"`
}

// MarshalWire implements wireMsg.
func (m *recoverMsg) MarshalWire(b []byte) []byte {
	return wirecodec.AppendString(b, m.Origin)
}

// UnmarshalWire implements wireMsg.
func (m *recoverMsg) UnmarshalWire(data []byte) error {
	r := wirecodec.NewReader(data)
	m.Origin = r.String()
	return r.Err()
}

// marshalMsg encodes msg into a pooled buffer. The caller must hand the
// buffer back with wirecodec.PutBuf after the transport call returns.
func marshalMsg(msg wireMsg) []byte {
	return msg.MarshalWire(wirecodec.GetBuf())
}
