package metrics

import (
	"math"
	"strings"
	"testing"
	"testing/quick"
)

func TestTimeSeriesBasics(t *testing.T) {
	ts := NewTimeSeries("load")
	if ts.Len() != 0 || ts.Max() != 0 || ts.Mean() != 0 {
		t.Error("empty series should report zeros")
	}
	if got := ts.Last(); got != (Point{}) {
		t.Errorf("Last on empty = %+v", got)
	}
	ts.Append(0, 1)
	ts.Append(60, 3)
	ts.Append(120, 2)
	if ts.Len() != 3 {
		t.Errorf("Len = %d", ts.Len())
	}
	if got := ts.Last(); got.Time != 120 || got.Value != 2 {
		t.Errorf("Last = %+v", got)
	}
	if ts.Max() != 3 {
		t.Errorf("Max = %g", ts.Max())
	}
	if ts.Mean() != 2 {
		t.Errorf("Mean = %g", ts.Mean())
	}
}

func TestTimeSeriesWindows(t *testing.T) {
	ts := NewTimeSeries("x")
	for i := 0; i < 10; i++ {
		ts.Append(float64(i*10), float64(i))
	}
	if got := ts.MeanOver(0, 50); got != 2 {
		t.Errorf("MeanOver(0,50) = %g, want 2", got)
	}
	if got := ts.MaxOver(50, 100); got != 9 {
		t.Errorf("MaxOver(50,100) = %g, want 9", got)
	}
	if got := ts.MeanOver(1000, 2000); got != 0 {
		t.Errorf("MeanOver outside range = %g, want 0", got)
	}
}

func TestSummarize(t *testing.T) {
	if got := Summarize(nil); got.Count != 0 {
		t.Errorf("Summarize(nil) = %+v", got)
	}
	values := make([]float64, 100)
	for i := range values {
		values[i] = float64(i + 1) // 1..100
	}
	s := Summarize(values)
	if s.Count != 100 || s.Min != 1 || s.Max != 100 {
		t.Errorf("summary = %+v", s)
	}
	if math.Abs(s.Mean-50.5) > 1e-9 {
		t.Errorf("mean = %g, want 50.5", s.Mean)
	}
	if s.P50 != 50 || s.P95 != 95 || s.P99 != 99 {
		t.Errorf("percentiles = %g %g %g", s.P50, s.P95, s.P99)
	}
}

func TestSummarizeDoesNotMutateInput(t *testing.T) {
	values := []float64{3, 1, 2}
	Summarize(values)
	if values[0] != 3 || values[1] != 1 || values[2] != 2 {
		t.Errorf("input mutated: %v", values)
	}
}

func TestIntHistogram(t *testing.T) {
	h := NewIntHistogram("keys", 4)
	for i := 0; i < 10; i++ {
		h.Add(1)
	}
	h.Add(3)
	h.Add(-5) // clamped to 0
	h.Add(99) // clamped to 3
	if got := h.Total(); got != 13 {
		t.Errorf("Total = %d, want 13", got)
	}
	b := h.Buckets()
	if b[0] != 1 || b[1] != 10 || b[2] != 0 || b[3] != 2 {
		t.Errorf("Buckets = %v", b)
	}
	i, c := h.MaxBucket()
	if i != 1 || c != 10 {
		t.Errorf("MaxBucket = %d,%d", i, c)
	}
	// mean bucket = 13/4 = 3.25; skew = 10/3.25
	if got := h.SkewRatio(); math.Abs(got-10/3.25) > 1e-9 {
		t.Errorf("SkewRatio = %g", got)
	}
	if NewIntHistogram("tiny", 0) == nil {
		t.Error("zero-bucket histogram should be coerced, not nil")
	}
	empty := NewIntHistogram("e", 3)
	if empty.SkewRatio() != 0 {
		t.Error("empty histogram skew should be 0")
	}
}

func TestTableRendering(t *testing.T) {
	a := NewTimeSeries("clash")
	b := NewTimeSeries("dht6")
	a.Append(0, 0.5)
	a.Append(60, 0.6)
	b.Append(0, 1.5)
	out := Table("Figure 4a", a, b)
	if !strings.Contains(out, "Figure 4a") || !strings.Contains(out, "clash") || !strings.Contains(out, "dht6") {
		t.Errorf("missing headers in:\n%s", out)
	}
	if !strings.Contains(out, "0.600") {
		t.Errorf("missing value in:\n%s", out)
	}
	// Second series is shorter: the missing cell renders as "-".
	if !strings.Contains(out, "-") {
		t.Errorf("missing placeholder in:\n%s", out)
	}
	if got := Table("empty"); !strings.Contains(got, "time") {
		t.Errorf("empty table malformed: %q", got)
	}
}

func TestPropertySummaryBounds(t *testing.T) {
	f := func(raw []float64) bool {
		vals := make([]float64, 0, len(raw))
		for _, v := range raw {
			if math.IsNaN(v) || math.IsInf(v, 0) {
				continue
			}
			// Keep magnitudes bounded so the mean cannot overflow or lose the
			// ordering property to floating-point rounding.
			vals = append(vals, math.Mod(v, 1e6))
		}
		s := Summarize(vals)
		if len(vals) == 0 {
			return s.Count == 0
		}
		return s.Min <= s.Mean && s.Mean <= s.Max && s.Min <= s.P50 && s.P50 <= s.Max &&
			s.P50 <= s.P95 && s.P95 <= s.P99 && s.P99 <= s.Max
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}
