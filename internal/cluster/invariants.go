package cluster

import (
	"fmt"
	"sort"

	"clash/internal/bitkey"
	"clash/internal/hub"
	"clash/internal/overlay"
)

// Probe is one cluster invariant check result.
type Probe struct {
	// Name identifies the invariant: coverage, successors, replicas.
	Name string `json:"name"`
	// OK is true when the invariant held; Detail explains either way.
	OK     bool   `json:"ok"`
	Detail string `json:"detail"`
	// Violations carries up to a handful of concrete counterexamples.
	Violations []string `json:"violations,omitempty"`
}

// maxProbeViolations caps the counterexamples a probe reports.
const maxProbeViolations = 8

// RunProbes evaluates every cluster invariant against one topology walk.
// A nil or incomplete topology yields skipped (not-OK) probes rather than
// false confidence.
func RunProbes(topo *hub.TopologyView) []Probe {
	if topo == nil {
		p := Probe{Name: "coverage", Detail: "no topology available (no hub reachable)"}
		return []Probe{p,
			{Name: "successors", Detail: p.Detail},
			{Name: "replicas", Detail: p.Detail}}
	}
	return []Probe{
		probeCoverage(topo),
		probeSuccessors(topo),
		probeReplicas(topo),
	}
}

// probeCoverage checks the CLASH structural invariant that the active key
// groups tile the key space exactly: sorted by prefix value, each group must
// begin where the previous one ended, with no gap and no overlap, and the
// last must wrap back to zero. (The paper's split/merge rules preserve this;
// a violation means a transfer lost or duplicated a group.)
func probeCoverage(topo *hub.TopologyView) Probe {
	p := Probe{Name: "coverage"}
	if !topo.Complete {
		p.Detail = "ring walk incomplete; coverage not evaluable"
		return p
	}
	type tile struct {
		name  string
		start uint64 // prefix bits left-aligned in 64
		width uint64 // 2^(64-depth); 0 means the whole space (depth 0)
	}
	tiles := make([]tile, 0, len(topo.Groups))
	for name := range topo.Groups {
		g, err := bitkey.ParseGroup(name)
		if err != nil {
			p.Violations = append(p.Violations, fmt.Sprintf("unparseable group %q: %v", name, err))
			continue
		}
		d := g.Depth()
		tiles = append(tiles, tile{
			name:  name,
			start: g.Prefix.Value << (64 - uint(d)),
			width: uint64(1) << (64 - uint(d)),
		})
	}
	if len(p.Violations) > 0 {
		p.Detail = "group names did not parse"
		return p
	}
	if len(tiles) == 0 {
		p.Detail = "no active key groups anywhere in the ring"
		return p
	}
	sort.Slice(tiles, func(i, j int) bool { return tiles[i].start < tiles[j].start })
	// Walk the tiles with a wrapping cursor: starting from 0 and adding each
	// width must visit every start exactly and land back on 0.
	var cursor uint64
	ok := true
	for _, t := range tiles {
		if t.start != cursor {
			ok = false
			if len(p.Violations) < maxProbeViolations {
				kind := "gap"
				if t.start < cursor {
					kind = "overlap"
				}
				p.Violations = append(p.Violations,
					fmt.Sprintf("%s before group %s (expected prefix start %#016x, got %#016x)",
						kind, t.name, cursor, t.start))
			}
			// Resynchronise so one bad tile doesn't cascade into noise.
			cursor = t.start
		}
		cursor += t.width
		if t.width == 0 && len(tiles) > 1 { // depth-0 root next to other groups
			ok = false
			p.Violations = append(p.Violations,
				fmt.Sprintf("root group %s coexists with %d other groups", t.name, len(tiles)-1))
		}
	}
	if cursor != 0 {
		ok = false
		if len(p.Violations) < maxProbeViolations {
			p.Violations = append(p.Violations,
				fmt.Sprintf("tail gap: last group ends at %#016x, not at the wrap point", cursor))
		}
	}
	p.OK = ok && len(p.Violations) == 0
	if p.OK {
		p.Detail = fmt.Sprintf("%d groups tile the key space exactly", len(tiles))
	} else {
		p.Detail = fmt.Sprintf("%d groups do not tile the key space", len(tiles))
	}
	return p
}

// probeSuccessors checks ring consistency: with the members sorted by Chord
// ID, every node's first successor must be the next member (wrapping).
func probeSuccessors(topo *hub.TopologyView) Probe {
	p := Probe{Name: "successors"}
	if !topo.Complete {
		p.Detail = "ring walk incomplete; successor order not evaluable"
		return p
	}
	nodes := append([]overlay.TopoNode(nil), topo.Nodes...)
	if len(nodes) == 0 {
		p.Detail = "topology walk returned no nodes"
		return p
	}
	sort.Slice(nodes, func(i, j int) bool { return nodes[i].ID < nodes[j].ID })
	for i, n := range nodes {
		want := nodes[(i+1)%len(nodes)].Addr
		got := ""
		if len(n.Successors) > 0 {
			got = n.Successors[0]
		}
		if got != want && len(p.Violations) < maxProbeViolations {
			p.Violations = append(p.Violations,
				fmt.Sprintf("%s: first successor %q, ring order expects %q", n.Addr, got, want))
		}
	}
	p.OK = len(p.Violations) == 0
	if p.OK {
		p.Detail = fmt.Sprintf("%d-node ring successor order consistent", len(nodes))
	} else {
		p.Detail = "successor pointers disagree with Chord ID order"
	}
	return p
}

// probeReplicas checks crash-recovery health: in a multi-node ring, every
// node holding key groups must have at least one live peer replicating it
// (replication is per origin node, not per group).
func probeReplicas(topo *hub.TopologyView) Probe {
	p := Probe{Name: "replicas"}
	if !topo.Complete {
		p.Detail = "ring walk incomplete; replica placement not evaluable"
		return p
	}
	if len(topo.Nodes) < 2 {
		p.OK = true
		p.Detail = "single-node ring: replication not applicable"
		return p
	}
	replicas := make(map[string]int)
	for _, n := range topo.Nodes {
		for _, origin := range n.ReplicaOrigins {
			if origin != n.Addr {
				replicas[origin]++
			}
		}
	}
	holders := 0
	for _, n := range topo.Nodes {
		if len(n.Groups) == 0 {
			continue
		}
		holders++
		if replicas[n.Addr] == 0 && len(p.Violations) < maxProbeViolations {
			p.Violations = append(p.Violations,
				fmt.Sprintf("%s holds %d groups but no peer replicates it", n.Addr, len(n.Groups)))
		}
	}
	p.OK = len(p.Violations) == 0
	if p.OK {
		p.Detail = fmt.Sprintf("every group-holding node (%d) has at least one replica peer", holders)
	} else {
		p.Detail = "group holders without crash-recovery replicas"
	}
	return p
}
