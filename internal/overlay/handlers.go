package overlay

import (
	"encoding/json"
	"errors"
	"fmt"
	"strconv"
	"sync/atomic"
	"time"

	"clash/internal/bitkey"
	"clash/internal/chord"
	"clash/internal/core"
	"clash/internal/cq"
	"clash/internal/wirecodec"
)

// handle is the node's inbound request dispatcher (installed on the
// transport by NewNode). Payloads are decoded with the binary wire codec;
// only the status snapshot stays JSON (it is a human-facing document).
func (n *Node) handle(msgType string, payload []byte) ([]byte, error) {
	switch msgType {
	case TypeFindSuccessor:
		return n.handleFindSuccessor(payload)
	case TypePredecessor:
		ref := refToMsg(n.chord.PredecessorRef())
		return marshalMsg(&ref), nil
	case TypeSuccessor:
		ref := refToMsg(n.chord.Successor())
		return marshalMsg(&ref), nil
	case TypeNotify:
		return n.handleNotify(payload)
	case TypePing:
		return nil, nil
	case TypeAcceptObject:
		return n.handleAcceptObject(payload)
	case TypeAcceptBatch:
		return n.handleAcceptBatch(payload)
	case TypeAcceptKeyGroup:
		return n.handleAcceptKeyGroup(payload)
	case TypeLoadReport:
		return n.handleLoadReport(payload)
	case TypeReleaseKeyGroup:
		return n.handleReleaseKeyGroup(payload)
	case TypeChildMoved:
		return n.handleChildMoved(payload)
	case TypeReplicateKeyGroup:
		return n.handleReplicate(payload)
	case TypeRecoverKeyGroups:
		return n.handleRecoverKeyGroups(payload)
	case TypeTopology:
		return n.handleTopology(payload)
	case TypeStatus:
		return json.Marshal(n.Status())
	default:
		return nil, fmt.Errorf("unknown message type %q", msgType)
	}
}

func (n *Node) handleFindSuccessor(payload []byte) ([]byte, error) {
	var req findSuccessorMsg
	if err := req.UnmarshalWire(payload); err != nil {
		return nil, err
	}
	ref, err := n.chord.FindSuccessor(chord.ID(req.ID))
	if err != nil {
		return nil, err
	}
	msg := refToMsg(ref)
	return marshalMsg(&msg), nil
}

func (n *Node) handleNotify(payload []byte) ([]byte, error) {
	var req notifyMsg
	if err := req.UnmarshalWire(payload); err != nil {
		return nil, err
	}
	n.chord.Notify(msgToRef(req.Candidate))
	return nil, nil
}

// handleAcceptObject implements the server side of ACCEPT_OBJECT for both
// object kinds: data packets are metered and matched against the stored
// continuous queries (with async match push to subscribers); query
// registrations are installed into the engine. Both only take effect when the
// depth resolution has landed on the right server (status OK / OK_CORRECTED).
//
//clash:hotpath
func (n *Node) handleAcceptObject(payload []byte) ([]byte, error) {
	// The codec stage can only be attributed after the decode reveals the
	// trace ID, so the clock is read up front whenever an observer is
	// installed; without one the decode path stays untouched.
	var codecStart time.Time
	if n.obs.get() != nil {
		codecStart = n.cfg.Clock.Now()
	}
	var req core.AcceptObjectMsg
	if err := req.UnmarshalWire(payload); err != nil {
		return nil, err
	}
	var codecMicros int64
	if !codecStart.IsZero() && req.TraceID != 0 {
		codecMicros = n.cfg.Clock.Now().Sub(codecStart).Microseconds()
	}
	reply, registered, err := n.acceptOne(&req, codecMicros)
	if err != nil {
		return nil, err
	}
	if registered {
		// A new continuous query is state worth surviving a crash: push the
		// updated replica snapshot to the successors right away, so even a
		// query registered moments before its holder dies is recoverable.
		// This is a full-snapshot push per registration — O(stored queries)
		// marshaling on a control-plane path; batch registrations coalesce
		// to one push per frame (handleAcceptBatch). A sampled registration
		// threads its span context onto the push so the replica holders'
		// spans join the trace tree.
		n.replicateSpan(spanRef{TraceID: req.TraceID, Parent: reply.SpanID, Hop: req.Hop + 1})
	}
	// Direct call rather than marshalMsg: boxing the reply into wireMsg would
	// heap-allocate it on every delivery.
	return reply.MarshalWire(wirecodec.GetBuf()), nil
}

// handleAcceptBatch is the vectored ACCEPT_OBJECT path: all objects pass
// through the server state machine under one table-lock acquisition, then
// the per-object side effects (metering, query matching, match push) run
// outside the lock. The reply carries one entry per object in request order;
// per-object failures fill that entry's Error instead of failing the frame.
//
//clash:hotpath
func (n *Node) handleAcceptBatch(payload []byte) ([]byte, error) {
	var codecStart time.Time
	if n.obs.get() != nil {
		codecStart = n.cfg.Clock.Now()
	}
	var req core.AcceptBatchMsg
	if err := req.UnmarshalWire(payload); err != nil {
		return nil, err
	}
	keys := make([]bitkey.Key, len(req.Objects))
	depths := make([]int, len(req.Objects))
	traced := false
	for i := range req.Objects {
		o := &req.Objects[i]
		k, err := bitkey.New(o.KeyValue, o.KeyBits)
		if err != nil {
			return nil, err
		}
		keys[i] = k
		depths[i] = o.Depth
		traced = traced || o.TraceID != 0
	}
	var codecMicros int64
	if traced = traced && !codecStart.IsZero(); traced {
		// Like the route stage below, the frame decodes as one unit: a traced
		// object is attributed the whole batch's codec time.
		codecMicros = n.cfg.Clock.Now().Sub(codecStart).Microseconds()
	}
	var routeStart time.Time
	if traced {
		routeStart = n.cfg.Clock.Now()
	}
	results, errs := n.server.HandleAcceptObjectBatch(keys, depths)
	var routeMicros int64
	if traced {
		// The batch passes the state machine under one lock acquisition, so
		// a traced object inside it is attributed the whole batch duration
		// (the time its delivery actually spent in routing).
		routeMicros = n.cfg.Clock.Now().Sub(routeStart).Microseconds()
	}
	out := core.AcceptBatchReplyMsg{Replies: make([]core.AcceptObjectReplyMsg, len(req.Objects))}
	registeredAny := false
	var regSpan spanRef
	for i := range req.Objects {
		if errs[i] != nil {
			out.Replies[i] = core.AcceptObjectReplyMsg{Error: errs[i].Error()}
			continue
		}
		rep, registered, err := n.applyObject(&req.Objects[i], keys[i], results[i], routeMicros, codecMicros)
		if err != nil {
			out.Replies[i] = core.AcceptObjectReplyMsg{Error: err.Error()}
			continue
		}
		if registered && regSpan.TraceID == 0 && rep.SpanID != 0 {
			regSpan = spanRef{TraceID: req.Objects[i].TraceID, Parent: rep.SpanID, Hop: req.Objects[i].Hop + 1}
		}
		registeredAny = registeredAny || registered
		out.Replies[i] = rep
	}
	if registeredAny {
		// The coalesced push carries the first sampled registration's span
		// context (one push, one parent — the other registrations' traces
		// simply end at their accept span).
		n.replicateSpan(regSpan)
	}
	// Direct call rather than marshalMsg: boxing the reply into wireMsg would
	// heap-allocate it on every batch.
	return out.MarshalWire(wirecodec.GetBuf()), nil
}

// acceptOne runs one object through the server state machine and its side
// effects. The bool reports whether a new continuous query was registered.
// codecMicros is the frame decode time the caller measured (only meaningful
// on a traced request).
func (n *Node) acceptOne(req *core.AcceptObjectMsg, codecMicros int64) (core.AcceptObjectReplyMsg, bool, error) {
	key, err := bitkey.New(req.KeyValue, req.KeyBits)
	if err != nil {
		return core.AcceptObjectReplyMsg{}, false, err
	}
	traced := req.TraceID != 0 && n.obs.get() != nil
	var routeStart time.Time
	if traced {
		routeStart = n.cfg.Clock.Now()
	}
	res, err := n.server.HandleAcceptObject(key, req.Depth)
	if err != nil {
		return core.AcceptObjectReplyMsg{}, false, err
	}
	var routeMicros int64
	if traced {
		routeMicros = n.cfg.Clock.Now().Sub(routeStart).Microseconds()
	}
	return n.applyObject(req, key, res, routeMicros, codecMicros)
}

// applyObject converts a state-machine result into the wire reply and, when
// the object landed on the right server, applies its application effect
// (meter + query match for data, engine registration for queries). The bool
// reports whether a new continuous query was registered (the caller pushes a
// replica update when so). routeMicros is the state-machine time the caller
// measured for this object (only meaningful on a traced request).
func (n *Node) applyObject(req *core.AcceptObjectMsg, key bitkey.Key, res core.AcceptObjectResult, routeMicros, codecMicros int64) (core.AcceptObjectReplyMsg, bool, error) {
	var obs Observer
	if req.TraceID != 0 {
		obs = n.obs.get()
	}
	// A sampled request gets a hop span: the root of the trace tree when the
	// probe arrived with no parent (this node is the client's first contact),
	// otherwise a resolve or route-forward hop chained under the sender's
	// span. The span ID is echoed in the reply so the client parents its next
	// probe under it.
	var spanID uint64
	spanKind := HopRouteForward
	if obs != nil {
		spanID = n.nextSpanID()
		if req.ParentSpan == 0 {
			spanKind = HopIngress
		}
	}
	reply := core.AcceptObjectReplyMsg{Status: res.Status, SpanID: spanID}
	switch res.Status {
	case core.StatusOK, core.StatusOKCorrected:
		reply.GroupValue = res.Group.Prefix.Value
		reply.GroupBits = res.Group.Prefix.Bits
		reply.CorrectDepth = res.CorrectDepth
	case core.StatusIncorrectDepth:
		reply.DMin = res.DMin
		if obs != nil {
			// A redirected probe is a split-resolution hop of the modified
			// binary search: its state-machine time is the resolve stage.
			obs.OnTraceStage(TraceStageResolve, routeMicros)
			if spanKind == HopRouteForward {
				spanKind = HopResolve
			}
			n.emitSpan(obs, Span{
				TraceID:       req.TraceID,
				SpanID:        spanID,
				Parent:        req.ParentSpan,
				Hop:           req.Hop,
				Kind:          spanKind,
				Detail:        "dmin=" + strconv.Itoa(res.DMin),
				CodecMicros:   codecMicros,
				HandlerMicros: routeMicros,
			})
		}
		return reply, false, nil
	}
	if obs != nil {
		n.emitSpan(obs, Span{
			TraceID:       req.TraceID,
			SpanID:        spanID,
			Parent:        req.ParentSpan,
			Hop:           req.Hop,
			Kind:          spanKind,
			Detail:        "group=" + res.Group.String(),
			CodecMicros:   codecMicros,
			HandlerMicros: routeMicros,
		})
	}

	registered := false
	var matchMicros int64
	switch req.Kind {
	case core.ObjectData:
		n.meter.RecordPackets(res.Group.String(), 1)
		var data dataMsg
		if len(req.Payload) > 0 {
			if err := data.UnmarshalWire(req.Payload); err != nil {
				return core.AcceptObjectReplyMsg{}, false, fmt.Errorf("bad data payload: %v", err)
			}
		}
		ev := cq.Event{Key: key, Attrs: data.Attrs, Payload: data.Payload}
		var matchStart time.Time
		if obs != nil {
			matchStart = n.cfg.Clock.Now()
		}
		matched := n.engine.Match(ev)
		if obs != nil {
			matchMicros = n.cfg.Clock.Now().Sub(matchStart).Microseconds()
		}
		for _, q := range matched {
			reply.Matches = append(reply.Matches, q.ID)
		}
		pushCtx := spanRef{TraceID: req.TraceID, Hop: req.Hop + 1}
		if obs != nil {
			// The engine match is a same-node child span of the accept span;
			// the match pushes hang off it in turn.
			matchSpan := n.nextSpanID()
			pushCtx.Parent = matchSpan
			n.emitSpan(obs, Span{
				TraceID:       req.TraceID,
				SpanID:        matchSpan,
				Parent:        spanID,
				Hop:           req.Hop,
				Kind:          HopCQMatch,
				Detail:        "matches=" + strconv.Itoa(len(matched)),
				HandlerMicros: matchMicros,
			})
		}
		n.pushMatches(matched, ev, pushCtx)
	case core.ObjectQuery:
		var st queryState
		if err := st.UnmarshalWire(req.Payload); err != nil {
			return core.AcceptObjectReplyMsg{}, false, fmt.Errorf("bad query payload: %v", err)
		}
		q, err := cq.UnmarshalQuery(st.Query)
		if err != nil {
			return core.AcceptObjectReplyMsg{}, false, err
		}
		if err := n.engine.Register(q); err != nil {
			if !errors.Is(err, cq.ErrDuplicateQuery) {
				return core.AcceptObjectReplyMsg{}, false, err
			}
		} else {
			n.meter.AddQueries(res.Group.String(), 1)
			registered = true
		}
		if st.Subscriber != "" {
			n.mu.Lock()
			n.subscribers[q.ID] = st.Subscriber
			n.mu.Unlock()
		}
	}
	if obs != nil {
		rec := TraceRecord{
			TraceID: req.TraceID,
			TimeMs:  n.cfg.Clock.Now().UnixMilli(),
			Node:    n.Addr(),
			Key:     key.String(),
			Group:   res.Group.String(),
			Status:  int(res.Status),
			Matches: len(reply.Matches),
			Stages:  []TraceStage{{Stage: TraceStageRoute, Micros: routeMicros}},
		}
		obs.OnTraceStage(TraceStageRoute, routeMicros)
		if req.Kind == core.ObjectData {
			rec.Stages = append(rec.Stages, TraceStage{Stage: TraceStageMatch, Micros: matchMicros})
			obs.OnTraceStage(TraceStageMatch, matchMicros)
		}
		obs.OnTrace(rec)
	}
	return reply, registered, nil
}

// pushMatches delivers match notifications to the subscribers of the matched
// queries — asynchronously by default so a slow subscriber never blocks the
// data path, or inline when Config.InlineMatchPush is set (the simulator's
// single-threaded mode). Deliveries follow the matched order (engine.Match
// sorts by query ID), so a deterministic transport sees a deterministic
// message sequence.
// tc, when it carries a non-zero TraceID, marks the originating publish as
// sampled: each delivery's round trip is reported as a deliver-stage
// observation plus a subscriber-deliver span chained under tc.Parent (the
// cq-match span). The span is recorded by this (sending) node — subscribers
// are client endpoints, not overlay nodes — with the push's queue wait and
// network round trip; the matchMsg still carries the trace context so the
// subscriber can correlate the notification with its publish.
func (n *Node) pushMatches(matched []cq.Query, ev cq.Event, tc spanRef) {
	if len(matched) == 0 {
		return
	}
	type target struct{ id, sub string }
	n.mu.Lock()
	targets := make([]target, 0, len(matched))
	for _, q := range matched {
		if sub := n.subscribers[q.ID]; sub != "" {
			targets = append(targets, target{id: q.ID, sub: sub})
		}
	}
	n.mu.Unlock()
	for _, t := range targets {
		var spanID uint64
		var enqueued time.Time
		if tc.TraceID != 0 && n.obs.get() != nil {
			spanID = n.nextSpanID()
			enqueued = n.cfg.Clock.Now()
		}
		msg := &matchMsg{
			QueryID:    t.id,
			KeyValue:   ev.Key.Value,
			KeyBits:    ev.Key.Bits,
			Attrs:      ev.Attrs,
			Payload:    ev.Payload,
			TraceID:    tc.TraceID,
			ParentSpan: spanID,
			Hop:        tc.Hop,
		}
		// Marshal synchronously: ev.Payload may alias the pooled request
		// buffer, which the transport recycles once the publish handler
		// returns. The marshalled frame is self-contained, so the async
		// delivery goroutine only ever touches the copy.
		payload := marshalMsg(msg)
		deliver := func(sub, queryID string, payload []byte) {
			defer wirecodec.PutBuf(payload)
			obs := n.obs.get()
			var start time.Time
			if tc.TraceID != 0 && obs != nil {
				start = n.cfg.Clock.Now()
			}
			// Match delivery is at-most-once (not idempotent), but the caller
			// still supplies the data-class deadline and retries a shed — the
			// handler never ran, so a resend cannot duplicate a notification.
			if _, err := n.caller.call(sub, TypeMatch, payload); err != nil {
				atomic.AddInt64(&n.matchDrops, 1)
			}
			if tc.TraceID != 0 && obs != nil {
				rtt := n.cfg.Clock.Now().Sub(start).Microseconds()
				obs.OnTraceStage(TraceStageDeliver, rtt)
				if spanID == 0 {
					// The observer appeared between enqueue and delivery; no
					// span ID (or queue stamp) was drawn, so skip the span.
					return
				}
				n.emitSpan(obs, Span{
					TraceID:       tc.TraceID,
					SpanID:        spanID,
					Parent:        tc.Parent,
					Hop:           tc.Hop,
					Kind:          HopDeliver,
					Detail:        "query=" + queryID,
					QueueMicros:   start.Sub(enqueued).Microseconds(),
					NetworkMicros: rtt,
				})
			}
		}
		if n.cfg.InlineMatchPush {
			deliver(t.sub, t.id, payload)
			continue
		}
		n.wg.Add(1)
		go func(sub, queryID string, payload []byte) {
			defer n.wg.Done()
			deliver(sub, queryID, payload)
		}(t.sub, t.id, payload)
	}
}

func (n *Node) handleAcceptKeyGroup(payload []byte) ([]byte, error) {
	var req core.AcceptKeyGroupMsg
	if err := req.UnmarshalWire(payload); err != nil {
		return nil, err
	}
	prefix, err := bitkey.New(req.GroupValue, req.GroupBits)
	if err != nil {
		return nil, err
	}
	g := bitkey.NewGroup(prefix)
	states := make([]queryState, 0, len(req.Queries))
	for _, raw := range req.Queries {
		var st queryState
		if err := st.UnmarshalWire(raw); err == nil {
			states = append(states, st)
		}
	}
	if err := n.server.HandleAcceptKeyGroupEpoch(g, core.ServerID(req.Parent), req.Epoch); err != nil {
		if errors.Is(err, core.ErrCovered) {
			// The range is already served here by finer or coarser active
			// groups — the sender's copy is stale. Keep its query state
			// (the packets it matches land on this server) and reply OK so
			// the sender drops the duplicate instead of resurrecting it.
			n.installQueries(states)
			n.replicate()
			return nil, nil
		}
		return nil, err
	}
	n.installQueries(states)
	n.resetQueryCount(g)
	// Accepting a group (split transfer or ownership re-homing) changes the
	// replicable state: push the new snapshot to the successors.
	n.replicate()
	return nil, nil
}

func (n *Node) handleLoadReport(payload []byte) ([]byte, error) {
	var req core.LoadReportMsg
	if err := req.UnmarshalWire(payload); err != nil {
		return nil, err
	}
	prefix, err := bitkey.New(req.GroupValue, req.GroupBits)
	if err != nil {
		return nil, err
	}
	rep := core.LoadReport{
		From:  core.ServerID(req.From),
		To:    core.ServerID(n.Addr()),
		Group: bitkey.NewGroup(prefix),
		Load:  req.Load,
	}
	// A stale report (the sender's view lags a merge or re-transfer) is not
	// an error worth a failed reply; it is simply dropped.
	_ = n.server.HandleLoadReport(rep, n.cfg.Clock.Now())
	return nil, nil
}

// handleChildMoved updates the holder of a transferred right child after the
// overlay re-homed it to a different node.
func (n *Node) handleChildMoved(payload []byte) ([]byte, error) {
	var req childMovedMsg
	if err := req.UnmarshalWire(payload); err != nil {
		return nil, err
	}
	prefix, err := bitkey.New(req.GroupValue, req.GroupBits)
	if err != nil {
		return nil, err
	}
	// Stale notifications (the pair merged meanwhile) are dropped silently.
	_ = n.server.HandleChildMoved(bitkey.NewGroup(prefix), core.ServerID(req.Holder))
	return nil, nil
}

// handleReleaseKeyGroup hands a key group (and its query state) back to the
// reclaiming parent during consolidation.
func (n *Node) handleReleaseKeyGroup(payload []byte) ([]byte, error) {
	var req core.ReleaseKeyGroupMsg
	if err := req.UnmarshalWire(payload); err != nil {
		return nil, err
	}
	prefix, err := bitkey.New(req.GroupValue, req.GroupBits)
	if err != nil {
		return nil, err
	}
	g := bitkey.NewGroup(prefix)
	states := n.extractQueries(g)
	if err := n.server.HandleRelease(g); err != nil {
		// ErrUnknownGroup means this server holds nothing for the group (a
		// previous release's reply was lost, or the group was re-homed):
		// tell the parent it is gone so the merge can complete. Any other
		// error (split further here) means the parent's view is stale.
		n.installQueries(states)
		reply := core.ReleaseKeyGroupReplyMsg{
			GroupValue: req.GroupValue,
			GroupBits:  req.GroupBits,
			OK:         false,
			Error:      err.Error(),
			Gone:       errors.Is(err, core.ErrUnknownGroup),
		}
		return marshalMsg(&reply), nil
	}
	n.meter.Drop(g.String())
	// Releasing a group shrinks the replicable state; push the new snapshot
	// so the successors stop holding the released range under this origin.
	n.replicate()
	reply := core.ReleaseKeyGroupReplyMsg{GroupValue: req.GroupValue, GroupBits: req.GroupBits, OK: true}
	for i := range states {
		reply.Queries = append(reply.Queries, states[i].MarshalWire(nil))
	}
	return marshalMsg(&reply), nil
}
