// Package wirecodec is a testdata stand-in for clash/internal/wirecodec: the
// analyzers resolve it by the package path's final segment.
package wirecodec

func AppendInt(b []byte, v int64) []byte       { return b }
func AppendUvarint(b []byte, v uint64) []byte  { return b }
func AppendBytes(b []byte, p []byte) []byte    { return b }
func AppendString(b []byte, s string) []byte   { return b }
func AppendBool(b []byte, v bool) []byte       { return b }
func AppendFloat64(b []byte, f float64) []byte { return b }

func GetBuf() []byte  { return nil }
func PutBuf(b []byte) {}

type Reader struct {
	data []byte
	err  error
}

func NewReader(data []byte) *Reader { return &Reader{data: data} }

func (r *Reader) Int() int64        { return 0 }
func (r *Reader) Uvarint() uint64   { return 0 }
func (r *Reader) Bytes() []byte     { return nil }
func (r *Reader) BytesCopy() []byte { return nil }
func (r *Reader) String() string    { return "" }
func (r *Reader) Bool() bool        { return false }
func (r *Reader) Float64() float64  { return 0 }
func (r *Reader) Err() error        { return r.err }
func (r *Reader) Len() int          { return len(r.data) }
