package sim

import (
	"errors"
	"fmt"
	"testing"
	"time"

	"clash/internal/overlay"
	"clash/internal/sim/link"
)

func testNet(t *testing.T, m link.Model) (*Engine, *Net) {
	t.Helper()
	eng := NewEngine(1)
	net, err := NewNet(eng, m)
	if err != nil {
		t.Fatal(err)
	}
	return eng, net
}

func TestNetCallAndErrors(t *testing.T) {
	_, net := testNet(t, link.Model{})
	a := net.Endpoint("a")
	b := net.Endpoint("b")
	b.SetHandler(func(msgType string, payload []byte) ([]byte, error) {
		if msgType == overlay.TypeStatus {
			return nil, fmt.Errorf("nope")
		}
		return append([]byte("echo:"), payload...), nil
	})

	reply, err := a.Call("b", overlay.TypePing, []byte("hi"))
	if err != nil {
		t.Fatalf("Call: %v", err)
	}
	if string(reply) != "echo:hi" {
		t.Errorf("reply = %q", reply)
	}
	if net.Calls(overlay.TypePing) != 1 {
		t.Errorf("Calls(ping) = %d", net.Calls(overlay.TypePing))
	}
	if _, err := a.Call("b", overlay.TypeStatus, nil); !overlay.IsRemote(err) {
		t.Errorf("handler error = %v, want RemoteError", err)
	}
	if _, err := a.Call("missing", overlay.TypePing, nil); !errors.Is(err, overlay.ErrUnreachable) {
		t.Errorf("unknown endpoint = %v, want ErrUnreachable", err)
	}
	net.SetDown("b", true)
	if _, err := a.Call("b", overlay.TypePing, nil); !errors.Is(err, overlay.ErrUnreachable) {
		t.Errorf("down endpoint = %v, want ErrUnreachable", err)
	}
	net.SetDown("b", false)
	if _, err := a.Call("b", overlay.TypePing, nil); err != nil {
		t.Errorf("after SetDown(false): %v", err)
	}

	st := a.Stats()
	if st.FramesOut == 0 || st.BytesOut == 0 || st.FramesIn == 0 {
		t.Errorf("caller stats not counted: %+v", st)
	}
}

func TestNetPartition(t *testing.T) {
	_, net := testNet(t, link.Model{})
	a := net.Endpoint("a")
	net.Endpoint("b").SetHandler(func(string, []byte) ([]byte, error) { return nil, nil })

	net.SetPartition("b", 1)
	if _, err := a.Call("b", overlay.TypePing, nil); !errors.Is(err, overlay.ErrUnreachable) {
		t.Errorf("cross-partition call = %v, want ErrUnreachable", err)
	}
	net.SetPartition("a", 1)
	if _, err := a.Call("b", overlay.TypePing, nil); err != nil {
		t.Errorf("same-partition call: %v", err)
	}
	net.Heal()
	if _, err := a.Call("b", overlay.TypePing, nil); err != nil {
		t.Errorf("after Heal: %v", err)
	}
}

func TestNetLatencyRecordedAndLoss(t *testing.T) {
	m := link.Model{BaseLatency: 10 * time.Millisecond, Jitter: 5 * time.Millisecond, Loss: 0.5}
	_, net := testNet(t, m)
	a := net.Endpoint("a")
	net.Endpoint("b").SetHandler(func(string, []byte) ([]byte, error) { return nil, nil })

	ok, lost := 0, 0
	for i := 0; i < 200; i++ {
		if _, err := a.Call("b", overlay.TypePing, nil); err != nil {
			if !errors.Is(err, overlay.ErrUnreachable) {
				t.Fatalf("loss error = %v", err)
			}
			lost++
		} else {
			ok++
		}
	}
	// Loss 0.5 per direction: roughly 3/4 of calls fail.
	if ok == 0 || lost == 0 {
		t.Fatalf("ok=%d lost=%d, want a mix", ok, lost)
	}
	h := net.Latency(overlay.TypePing)
	if h == nil || h.Count() == 0 {
		t.Fatal("no latency recorded")
	}
	s := h.Summary()
	if s.Min < 10000 || s.Max > 15000 {
		t.Errorf("one-way latency range [%.0f, %.0f]µs, want within [10ms, 15ms)", s.Min, s.Max)
	}
}

// TestNetPayloadIsolation checks that a handler retaining its payload is not
// corrupted by the caller recycling the buffer, and vice versa for replies.
func TestNetPayloadIsolation(t *testing.T) {
	_, net := testNet(t, link.Model{})
	a := net.Endpoint("a")
	b := net.Endpoint("b")
	var retained []byte
	reply := []byte("reply")
	b.SetHandler(func(_ string, payload []byte) ([]byte, error) {
		retained = payload
		return reply, nil
	})
	buf := []byte("payload")
	got, err := a.Call("b", overlay.TypePing, buf)
	if err != nil {
		t.Fatal(err)
	}
	buf[0] = 'X'
	reply[0] = 'X'
	if string(retained) != "payload" {
		t.Errorf("handler payload corrupted: %q", retained)
	}
	if string(got) != "reply" {
		t.Errorf("caller reply corrupted: %q", got)
	}
}
