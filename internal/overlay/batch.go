package overlay

import (
	"fmt"
	"sync"
	"time"

	"clash/internal/bitkey"
	"clash/internal/core"
	"clash/internal/wirecodec"
)

// BatchItem is one data packet queued for a batched publish.
type BatchItem struct {
	Key     bitkey.Key
	Attrs   map[string]float64
	Payload []byte
}

// PublishBatch delivers many data packets with as few frames as possible:
// items whose (group → server) binding is cached are grouped per server and
// shipped in one TypeAcceptBatch frame each (one server-table lock
// acquisition per frame on the remote side); cache misses and items the
// server redirects fall back to the single-object depth-resolution path.
// results[i] describes items[i]; a nil entry means errs[i] carries that
// item's failure. The call itself only fails on empty input validation —
// per-item failures never abort the rest of the batch.
func (c *Client) PublishBatch(items []BatchItem) (results []*PublishResult, errs []error) {
	results = make([]*PublishResult, len(items))
	errs = make([]error, len(items))

	// Partition: per-server vectors of item indexes for cache hits, the rest
	// to the slow path.
	type serverBatch struct {
		idx    []int
		groups []bitkey.Group
	}
	perServer := make(map[core.ServerID]*serverBatch)
	var slow []int
	for i, it := range items {
		if it.Key.Bits != c.keyBits {
			errs[i] = fmt.Errorf("%w: key %d bits, want %d", core.ErrBadKey, it.Key.Bits, c.keyBits)
			continue
		}
		g, srv, ok := c.router.Route(it.Key)
		if !ok {
			slow = append(slow, i)
			continue
		}
		sb := perServer[srv]
		if sb == nil {
			sb = &serverBatch{}
			perServer[srv] = sb
		}
		sb.idx = append(sb.idx, i)
		sb.groups = append(sb.groups, g)
	}

	for srv, sb := range perServer {
		c.sendBatch(srv, sb.idx, sb.groups, items, results, errs, &slow)
	}

	// Slow path: individual delivery with full depth resolution (which also
	// re-warms the cache for the next batch).
	for _, i := range slow {
		msg := dataMsg{Attrs: items[i].Attrs, Payload: items[i].Payload}
		data := marshalMsg(&msg)
		results[i], errs[i] = c.deliver(items[i].Key, core.ObjectData, data)
		wirecodec.PutBuf(data)
	}
	return results, errs
}

// sendBatch ships one per-server TypeAcceptBatch frame and applies its
// replies; items the server did not accept are appended to slow.
func (c *Client) sendBatch(srv core.ServerID, idx []int, groups []bitkey.Group, items []BatchItem, results []*PublishResult, errs []error, slow *[]int) {
	req := core.AcceptBatchMsg{Objects: make([]core.AcceptObjectMsg, len(idx))}
	payloadBufs := make([][]byte, len(idx))
	for j, i := range idx {
		msg := dataMsg{Attrs: items[i].Attrs, Payload: items[i].Payload}
		payloadBufs[j] = marshalMsg(&msg)
		req.Objects[j] = core.AcceptObjectMsg{
			KeyValue: items[i].Key.Value,
			KeyBits:  items[i].Key.Bits,
			Depth:    groups[j].Depth(),
			Kind:     core.ObjectData,
			Payload:  payloadBufs[j],
			TraceID:  c.nextTraceID(),
		}
	}
	var reply core.AcceptBatchReplyMsg
	err := call(c.tr, string(srv), TypeAcceptBatch, &req, &reply)
	for _, buf := range payloadBufs {
		wirecodec.PutBuf(buf)
	}
	if err != nil {
		if !IsRemote(err) {
			// The server is gone: evict its bindings and resolve each item
			// from scratch.
			c.router.ForgetServer(srv)
		}
		*slow = append(*slow, idx...)
		return
	}
	if len(reply.Replies) != len(idx) {
		for _, i := range idx {
			errs[i] = fmt.Errorf("overlay: batch reply carries %d entries for %d objects", len(reply.Replies), len(idx))
		}
		return
	}
	for j, i := range idx {
		rep := &reply.Replies[j]
		if rep.Status == 0 {
			errs[i] = fmt.Errorf("overlay: remote error: %s", rep.Error)
			continue
		}
		res, derr := decodeAccept(rep)
		if derr != nil {
			errs[i] = derr
			continue
		}
		switch res.Status {
		case core.StatusOK, core.StatusOKCorrected:
			c.router.Learn(res.Group, srv)
			c.lastDepth.Store(int64(res.CorrectDepth))
			results[i] = &PublishResult{Server: string(srv), Group: res.Group, Probes: 1, Matches: rep.Matches}
		default:
			// INCORRECT_DEPTH: the group moved; re-resolve individually.
			c.router.Forget(groups[j])
			*slow = append(*slow, i)
		}
	}
}

// Batcher accumulates published packets and flushes them as batched frames
// when the buffer reaches size packets or interval elapses, whichever comes
// first. Publish is safe for concurrent use; a size-triggered flush runs on
// the publishing goroutine (providing natural backpressure), the interval
// flush on a background goroutine.
type Batcher struct {
	c        *Client
	size     int
	onResult func(item BatchItem, res *PublishResult, err error)

	mu     sync.Mutex
	buf    []BatchItem
	closed bool

	stop chan struct{}
	done chan struct{}
}

// NewBatcher creates a batcher flushing at size packets or every interval.
// onResult (optional) is invoked once per published item with its outcome.
func (c *Client) NewBatcher(size int, interval time.Duration, onResult func(BatchItem, *PublishResult, error)) *Batcher {
	if size < 1 {
		size = 1
	}
	if interval <= 0 {
		interval = 50 * time.Millisecond
	}
	b := &Batcher{
		c:        c,
		size:     size,
		onResult: onResult,
		buf:      make([]BatchItem, 0, size),
		stop:     make(chan struct{}),
		done:     make(chan struct{}),
	}
	go b.flushLoop(interval)
	return b
}

// Publish queues one data packet. When the queue reaches the flush size, the
// whole batch is published synchronously on this goroutine.
func (b *Batcher) Publish(key bitkey.Key, attrs map[string]float64, payload []byte) error {
	b.mu.Lock()
	if b.closed {
		b.mu.Unlock()
		return ErrClosed
	}
	b.buf = append(b.buf, BatchItem{Key: key, Attrs: attrs, Payload: payload})
	var batch []BatchItem
	if len(b.buf) >= b.size {
		batch = b.buf
		b.buf = make([]BatchItem, 0, b.size)
	}
	b.mu.Unlock()
	if batch != nil {
		b.publish(batch)
	}
	return nil
}

// Flush publishes everything currently queued.
func (b *Batcher) Flush() {
	b.mu.Lock()
	batch := b.buf
	if len(batch) > 0 {
		b.buf = make([]BatchItem, 0, b.size)
	}
	b.mu.Unlock()
	if len(batch) > 0 {
		b.publish(batch)
	}
}

// Close stops the interval flusher and publishes the remaining queue.
func (b *Batcher) Close() error {
	b.mu.Lock()
	if b.closed {
		b.mu.Unlock()
		return nil
	}
	b.closed = true
	b.mu.Unlock()
	close(b.stop)
	<-b.done
	b.Flush()
	return nil
}

func (b *Batcher) flushLoop(interval time.Duration) {
	defer close(b.done)
	t := b.c.clk.NewTicker(interval)
	defer t.Stop()
	for {
		select {
		case <-t.C():
			b.Flush()
		case <-b.stop:
			return
		}
	}
}

func (b *Batcher) publish(batch []BatchItem) {
	results, errs := b.c.PublishBatch(batch)
	if b.onResult == nil {
		return
	}
	for i := range batch {
		b.onResult(batch[i], results[i], errs[i])
	}
}
