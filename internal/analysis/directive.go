package analysis

import (
	"go/ast"
	"go/token"
	"strings"
)

// directivePrefix introduces a suppression comment:
//
//	//clashvet:ignore <analyzer> <reason>
//
// The directive suppresses <analyzer>'s findings on the directive's own line
// and on the line immediately below it (so it can trail the offending
// statement or sit on its own line above it). The reason is mandatory: a
// suppression without a justification is itself a finding.
const directivePrefix = "//clashvet:ignore"

// directive is one parsed //clashvet:ignore comment.
type directive struct {
	pos      token.Position
	analyzer string
	reason   string
	// bad holds the malformedness complaint, empty when well-formed.
	bad string
}

// directiveSet indexes a package's directives by file and line.
type directiveSet struct {
	// byLine maps filename -> line -> analyzers suppressed on that line.
	byLine map[string]map[int][]directive
	all    []directive
}

// collectDirectives parses every //clashvet:ignore comment in the files.
func collectDirectives(fset *token.FileSet, files []*ast.File) *directiveSet {
	set := &directiveSet{byLine: make(map[string]map[int][]directive)}
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				if !strings.HasPrefix(c.Text, directivePrefix) {
					continue
				}
				d := parseDirective(c.Text)
				d.pos = fset.Position(c.Pos())
				set.all = append(set.all, d)
				if d.bad != "" {
					continue
				}
				lines := set.byLine[d.pos.Filename]
				if lines == nil {
					lines = make(map[int][]directive)
					set.byLine[d.pos.Filename] = lines
				}
				// The directive covers its own line (trailing form) and the
				// next line (standalone form above the statement).
				lines[d.pos.Line] = append(lines[d.pos.Line], d)
				lines[d.pos.Line+1] = append(lines[d.pos.Line+1], d)
			}
		}
	}
	return set
}

// parseDirective splits "//clashvet:ignore <analyzer> <reason>".
func parseDirective(text string) directive {
	rest := strings.TrimPrefix(text, directivePrefix)
	if rest != "" && rest[0] != ' ' && rest[0] != '\t' {
		// e.g. //clashvet:ignoreclockcheck — not a directive of ours.
		return directive{bad: "malformed //clashvet:ignore directive: expected \"//clashvet:ignore <analyzer> <reason>\""}
	}
	fields := strings.Fields(rest)
	switch len(fields) {
	case 0:
		return directive{bad: "malformed //clashvet:ignore directive: missing analyzer and reason"}
	case 1:
		return directive{analyzer: fields[0], bad: "malformed //clashvet:ignore directive: missing reason (every suppression must say why)"}
	}
	return directive{analyzer: fields[0], reason: strings.Join(fields[1:], " ")}
}

// apply filters out diagnostics suppressed by a matching directive.
func (s *directiveSet) apply(diags []Diagnostic) []Diagnostic {
	var kept []Diagnostic
	for _, d := range diags {
		if !s.suppresses(d) {
			kept = append(kept, d)
		}
	}
	return kept
}

func (s *directiveSet) suppresses(d Diagnostic) bool {
	for _, dir := range s.byLine[d.Pos.Filename][d.Pos.Line] {
		if dir.analyzer == d.Analyzer {
			return true
		}
	}
	return false
}

// malformed returns one framework diagnostic per malformed directive. These
// carry the analyzer name "clashvet" and are never suppressible.
func (s *directiveSet) malformed() []Diagnostic {
	var diags []Diagnostic
	for _, d := range s.all {
		if d.bad != "" {
			diags = append(diags, Diagnostic{Analyzer: "clashvet", Pos: d.pos, Message: d.bad})
		}
	}
	return diags
}
