package core

import (
	"errors"
	"fmt"

	"clash/internal/bitkey"
)

// ErrDepthNotFound is returned when the depth search cannot locate an active
// key group for a key (which indicates an inconsistent or empty overlay).
var ErrDepthNotFound = errors.New("clash: depth resolution failed")

// Probe sends one ACCEPT_OBJECT request for the key at the given estimated
// depth and returns the server's reply. Implementations route the request
// through the DHT: they build the virtual key for (key, depth), Map() it to a
// server and deliver the message (counting whatever per-lookup cost applies).
type Probe func(depth int) (AcceptObjectResult, error)

// ResolveResult summarises one client depth resolution.
type ResolveResult struct {
	// Depth is the correct depth of the key's current group.
	Depth int
	// Group is the active group that contains the key.
	Group bitkey.Group
	// Probes is the number of ACCEPT_OBJECT requests that were needed.
	Probes int
}

// DepthSearchStrategy selects how a client picks candidate depths.
type DepthSearchStrategy int

// Depth search strategies. The paper's protocol uses the modified binary
// search; the linear strategies exist for the ablation benchmarks.
const (
	// SearchBinary is the paper's modified binary search over (0, N].
	SearchBinary DepthSearchStrategy = iota + 1
	// SearchLinearUp probes depths 1, 2, 3, ... until it finds the group.
	SearchLinearUp
	// SearchLinearDown probes depths N, N-1, ... until it finds the group.
	SearchLinearDown
)

// ResolveDepth finds the correct depth for an N-bit identifier key by probing
// servers through the supplied Probe, starting from initialGuess (clamped
// into [1, N]; pass 0 or any out-of-range value to start in the middle).
//
// The binary strategy implements the paper's update rules for an
// INCORRECT_DEPTH(dmin) reply to a probe at depth d:
//
//  1. if dmin ≥ d, the correct depth dc is at least dmin+1 (no new upper
//     bound);
//  2. if dmin < d, then dmin+1 ≤ dc < d, so both bounds tighten.
//
// It converges in O(log N) probes; in practice fewer, because the reply's
// dmin jumps the lower bound by many levels at once.
func ResolveDepth(n int, initialGuess int, strategy DepthSearchStrategy, probe Probe) (ResolveResult, error) {
	if probe == nil {
		return ResolveResult{}, fmt.Errorf("clash: nil probe")
	}
	if n < 1 || n > bitkey.MaxBits {
		return ResolveResult{}, fmt.Errorf("%w: key length %d", bitkey.ErrBadLength, n)
	}
	switch strategy {
	case SearchLinearUp:
		return resolveLinear(n, probe, false)
	case SearchLinearDown:
		return resolveLinear(n, probe, true)
	default:
		return resolveBinary(n, initialGuess, probe)
	}
}

func resolveBinary(n, initialGuess int, probe Probe) (ResolveResult, error) {
	low, high := 1, n
	d := initialGuess
	if d < low || d > high {
		d = (low + high + 1) / 2
	}
	probes := 0
	for probes < 2*n+4 {
		res, err := probe(d)
		if err != nil {
			return ResolveResult{}, fmt.Errorf("probe depth %d: %w", d, err)
		}
		probes++
		switch res.Status {
		case StatusOK, StatusOKCorrected:
			return ResolveResult{Depth: res.CorrectDepth, Group: res.Group, Probes: probes}, nil
		case StatusIncorrectDepth:
			dmin := res.DMin
			if dmin >= d {
				// Rule 1: only the lower bound moves.
				low = max(low, dmin+1)
			} else {
				// Rule 2: the correct depth lies in (dmin, d).
				low = max(low, dmin+1)
				high = min(high, d-1)
			}
			if low > high {
				// The bounds crossed (possible only when the overlay mutated
				// between probes); restart the search over the full range.
				low, high = 1, n
			}
			d = (low + high + 1) / 2
		default:
			return ResolveResult{}, fmt.Errorf("%w: unexpected status %v", ErrDepthNotFound, res.Status)
		}
	}
	return ResolveResult{}, fmt.Errorf("%w: no convergence after %d probes", ErrDepthNotFound, probes)
}

func resolveLinear(n int, probe Probe, down bool) (ResolveResult, error) {
	probes := 0
	for i := 0; i < n; i++ {
		d := i + 1
		if down {
			d = n - i
		}
		res, err := probe(d)
		if err != nil {
			return ResolveResult{}, fmt.Errorf("probe depth %d: %w", d, err)
		}
		probes++
		if res.Status == StatusOK || res.Status == StatusOKCorrected {
			return ResolveResult{Depth: res.CorrectDepth, Group: res.Group, Probes: probes}, nil
		}
	}
	return ResolveResult{}, fmt.Errorf("%w: exhausted all depths", ErrDepthNotFound)
}
